"""CG: conjugate gradient with a sparse SPD system (NPB kernel CG).

Estimates the smallest eigenvalue region of a sparse symmetric
positive-definite matrix by solving ``A x = b`` with unpreconditioned
conjugate gradient.  The matrix is the 2-D five-point Laplacian — SPD,
deterministic, and with a known direct solution to validate against.

Parallel structure (as in the Java NPB): row-slab partitioned matvec and
dot products, with barrier-based all-reduce between steps — five barrier
synchronisations per CG iteration, the densest barrier traffic of the
suite (the paper's worst avoidance overhead, Table 2, is CG's).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.common import SpmdPool, WorkloadResult, slab
from repro.runtime.verifier import ArmusRuntime


def laplacian_2d(side: int) -> np.ndarray:
    """Dense 2-D five-point Laplacian on a ``side x side`` grid (small
    sizes only; density is irrelevant to the synchronisation pattern)."""
    n = side * side
    a = np.zeros((n, n))
    for i in range(side):
        for j in range(side):
            k = i * side + j
            a[k, k] = 4.0
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < side and 0 <= nj < side:
                    a[k, ni * side + nj] = -1.0
    return a


def run_cg(
    runtime: ArmusRuntime,
    n_tasks: int = 4,
    side: int = 12,
    iterations: int = 25,
    seed: int = 42,
) -> WorkloadResult:
    """Solve the Laplacian system by CG on ``n_tasks`` ranks.

    Validation: the final residual norm must be small relative to ``b``,
    and the solution must match ``numpy.linalg.solve`` on the same
    system.
    """
    rng = np.random.default_rng(seed)
    a = laplacian_2d(side)
    n = a.shape[0]
    b = rng.standard_normal(n)

    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    q = np.zeros(n)
    # Scalars shared across ranks, updated by rank 0 between barriers.
    scalars = {"rho": float(r @ r), "alpha": 0.0, "beta": 0.0}

    pool = SpmdPool(runtime, n_tasks, name="cg")

    def body(rank: int, pool: SpmdPool) -> None:
        rows = slab(n, rank, n_tasks)
        for _ in range(iterations):
            # q = A p (row slab), then a reduction for p.q
            q[rows] = a[rows] @ p
            pq_local = float(p[rows] @ q[rows])
            pq = pool.all_reduce(rank, pq_local)
            # alpha and the x/r updates
            alpha = scalars["rho"] / pq
            x[rows] += alpha * p[rows]
            r[rows] -= alpha * q[rows]
            rho_local = float(r[rows] @ r[rows])
            rho_new = pool.all_reduce(rank, rho_local)
            # beta and the new direction; update shared scalars once
            beta = rho_new / scalars["rho"]
            p[rows] = r[rows] + beta * p[rows]
            pool.barrier_step()  # everyone sees the new p before rank 0
            if rank == 0:
                scalars["rho"] = rho_new
                scalars["alpha"] = alpha
                scalars["beta"] = beta
            pool.barrier_step()  # ... publishes the scalars for next iter

    pool.run(body)

    residual = float(np.linalg.norm(b - a @ x))
    reference = np.linalg.solve(a, b)
    err = float(np.linalg.norm(x - reference) / np.linalg.norm(reference))
    validated = residual < 1e-6 * float(np.linalg.norm(b)) or err < 1e-6
    return WorkloadResult(
        name="CG",
        n_tasks=n_tasks,
        checksum=float(x.sum()),
        validated=validated,
        details={"residual": residual, "rel_err": err, "iterations": iterations},
    ).require_valid()
