"""FT: spectral method via FFTs (NPB kernel FT).

Solves a diffusion-like evolution in Fourier space: forward 2-D FFT of a
deterministic pseudo-random field, repeated application of spectral decay
factors with a checksum per step, then an inverse transform.  The 2-D
FFT is computed as row FFTs + (implicit) transpose + column FFTs, with a
barrier between the two passes — the canonical distributed-FFT
synchronisation pattern.

Validation: the per-step checksums must match a direct ``numpy.fft.fft2``
reference computation to near machine precision, and the final inverse
transform must recover the evolved field.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.common import SpmdPool, WorkloadResult, slab
from repro.runtime.verifier import ArmusRuntime


def run_ft(
    runtime: ArmusRuntime,
    n_tasks: int = 4,
    size: int = 32,
    steps: int = 4,
    seed: int = 11,
) -> WorkloadResult:
    """Evolve a ``size x size`` field for ``steps`` spectral steps."""
    rng = np.random.default_rng(seed)
    field = rng.standard_normal((size, size)) + 1j * rng.standard_normal(
        (size, size)
    )

    # Spectral decay factors exp(-4 pi^2 |k|^2 t dt) as in FT.
    k = np.fft.fftfreq(size) * size
    k2 = k[:, None] ** 2 + k[None, :] ** 2
    alpha = 1e-4
    decay = np.exp(-4.0 * np.pi**2 * alpha * k2)

    work = field.copy()  # row-FFT results land here
    spectrum = np.zeros_like(work)
    checksums = np.zeros(steps, dtype=complex)

    pool = SpmdPool(runtime, n_tasks, name="ft", extra_barriers=1)

    def body(rank: int, pool: SpmdPool) -> None:
        rows = slab(size, rank, n_tasks)
        cols = slab(size, rank, n_tasks)
        # Forward transform: FFT rows, barrier ("transpose"), FFT columns.
        work[rows] = np.fft.fft(field[rows], axis=1)
        pool.barrier_step()
        spectrum[:, cols] = np.fft.fft(work[:, cols], axis=0)
        pool.barrier_step()
        for step in range(steps):
            spectrum[rows] *= decay[rows]
            pool.barrier_step(which=0)
            if rank == 0:
                checksums[step] = spectrum.sum()
            pool.barrier_step(which=0)
        # Inverse transform back to physical space.
        work[:, cols] = np.fft.ifft(spectrum[:, cols], axis=0)
        pool.barrier_step()
        field[rows] = np.fft.ifft(work[rows], axis=1)
        pool.barrier_step()

    original = field.copy()
    pool.run(body)

    # Reference: direct fft2 evolution.
    ref_spec = np.fft.fft2(original)
    ref_checks = np.zeros(steps, dtype=complex)
    for step in range(steps):
        ref_spec = ref_spec * decay
        ref_checks[step] = ref_spec.sum()
    ref_field = np.fft.ifft2(ref_spec)

    check_err = float(np.max(np.abs(checksums - ref_checks)))
    field_err = float(np.max(np.abs(field - ref_field)))
    scale = float(np.max(np.abs(ref_checks))) or 1.0
    validated = check_err < 1e-8 * scale and field_err < 1e-10
    return WorkloadResult(
        name="FT",
        n_tasks=n_tasks,
        checksum=float(np.abs(checksums[-1])),
        validated=validated,
        details={"checksum_err": check_err, "field_err": field_err},
    ).require_valid()
