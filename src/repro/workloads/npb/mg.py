"""MG: multigrid V-cycles on a 2-D Poisson problem (NPB kernel MG).

Approximates ``-Δu = f`` on the unit square with V-cycles: damped-Jacobi
smoothing, full-weighting restriction, bilinear prolongation.  Ranks own
row slabs of every grid level; each smoothing sweep, restriction and
prolongation is followed by a barrier — the hierarchy makes MG the most
barrier-step-heavy kernel per unit of arithmetic.

Validation: the residual norm after the V-cycles must fall below a fixed
fraction of the initial residual (multigrid contracts the error by a
roughly constant factor per cycle, so this is a tight functional check).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.workloads.common import SpmdPool, WorkloadResult, slab
from repro.runtime.verifier import ArmusRuntime


def _residual(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """r = f + Δu on interior points (five-point stencil)."""
    r = np.zeros_like(u)
    r[1:-1, 1:-1] = f[1:-1, 1:-1] - (
        4.0 * u[1:-1, 1:-1]
        - u[:-2, 1:-1]
        - u[2:, 1:-1]
        - u[1:-1, :-2]
        - u[1:-1, 2:]
    ) / (h * h)
    return r


def run_mg(
    runtime: ArmusRuntime,
    n_tasks: int = 4,
    levels: int = 4,
    cycles: int = 4,
    smooth_sweeps: int = 2,
    seed: int = 7,
) -> WorkloadResult:
    """Run ``cycles`` V-cycles on a ``(2^levels+1)^2`` grid."""
    n = 2**levels + 1
    rng = np.random.default_rng(seed)
    h0 = 1.0 / (n - 1)

    # Grids per level: level 0 is finest.
    us: List[np.ndarray] = []
    fs: List[np.ndarray] = []
    size = n
    for _ in range(levels):
        us.append(np.zeros((size, size)))
        fs.append(np.zeros((size, size)))
        size = size // 2 + 1
    fs[0][1:-1, 1:-1] = rng.standard_normal((n - 2, n - 2))
    initial_res = float(np.linalg.norm(_residual(us[0], fs[0], h0)))

    pool = SpmdPool(runtime, n_tasks, name="mg")
    omega = 0.8  # damped Jacobi

    def smooth(level: int, rank: int) -> None:
        """One damped-Jacobi sweep on the rank's interior row slab."""
        u, f = us[level], fs[level]
        m = u.shape[0]
        h = 1.0 / (m - 1)
        rows = slab(m - 2, rank, n_tasks)
        lo, hi = rows.start + 1, rows.stop + 1  # interior offset
        if lo >= hi:
            return
        new = (
            u[lo - 1:hi - 1, 1:-1]
            + u[lo + 1:hi + 1, 1:-1]
            + u[lo:hi, :-2]
            + u[lo:hi, 2:]
            + (h * h) * f[lo:hi, 1:-1]
        ) / 4.0
        u[lo:hi, 1:-1] = (1 - omega) * u[lo:hi, 1:-1] + omega * new

    def body(rank: int, pool: SpmdPool) -> None:
        for _ in range(cycles):
            # Descend: smooth, compute residual, restrict.
            for level in range(levels - 1):
                for _ in range(smooth_sweeps):
                    smooth(level, rank)
                    pool.barrier_step()
                if rank == 0:
                    m = us[level].shape[0]
                    h = 1.0 / (m - 1)
                    res = _residual(us[level], fs[level], h)
                    # Full weighting restriction to the coarse grid.
                    coarse = fs[level + 1]
                    coarse[1:-1, 1:-1] = (
                        res[2:-2:2, 2:-2:2]
                        + 0.5
                        * (
                            res[1:-3:2, 2:-2:2]
                            + res[3:-1:2, 2:-2:2]
                            + res[2:-2:2, 1:-3:2]
                            + res[2:-2:2, 3:-1:2]
                        )
                    ) / 3.0
                    us[level + 1][:] = 0.0
                pool.barrier_step()
            # Coarsest level: relax hard (it is tiny).
            for _ in range(8 * smooth_sweeps):
                smooth(levels - 1, rank)
                pool.barrier_step()
            # Ascend: prolong the correction and smooth.
            for level in range(levels - 2, -1, -1):
                if rank == 0:
                    corr = us[level + 1]
                    fine = us[level]
                    mc = corr.shape[0]
                    # Bilinear prolongation (injection + interpolation).
                    fine[0:2 * mc - 1:2, 0:2 * mc - 1:2] += corr
                    fine[1:2 * mc - 2:2, 0:2 * mc - 1:2] += (
                        corr[:-1, :] + corr[1:, :]
                    ) / 2.0
                    fine[0:2 * mc - 1:2, 1:2 * mc - 2:2] += (
                        corr[:, :-1] + corr[:, 1:]
                    ) / 2.0
                    fine[1:2 * mc - 2:2, 1:2 * mc - 2:2] += (
                        corr[:-1, :-1] + corr[1:, :-1] + corr[:-1, 1:] + corr[1:, 1:]
                    ) / 4.0
                    fine[0, :] = fine[-1, :] = 0.0
                    fine[:, 0] = fine[:, -1] = 0.0
                pool.barrier_step()
                for _ in range(smooth_sweeps):
                    smooth(level, rank)
                    pool.barrier_step()

    pool.run(body)

    final_res = float(np.linalg.norm(_residual(us[0], fs[0], h0)))
    # Multigrid must contract the residual substantially; plain smoothing
    # alone would not reach this factor in `cycles` V-cycles.
    validated = final_res < 0.05 * initial_res
    return WorkloadResult(
        name="MG",
        n_tasks=n_tasks,
        checksum=float(us[0].sum()),
        validated=validated,
        details={
            "initial_residual": initial_res,
            "final_residual": final_res,
            "contraction": final_res / initial_res if initial_res else 0.0,
        },
    ).require_valid()
