"""Line solvers for the ADI pseudo-applications (BT and SP).

NPB's BT and SP solve the same ADI-factored CFD system with different
line solvers: *block*-tridiagonal (BT) versus scalar *pentadiagonal*
(SP).  This module implements both from scratch, vectorised over many
independent lines at once (each rank solves all lines of its slab in one
call):

* :func:`block_thomas` — Thomas elimination over 2x2 blocks;
* :func:`penta_solve` — five-diagonal Gaussian elimination without
  pivoting (the systems are diagonally dominant by construction).

The unit tests validate both against dense ``numpy.linalg.solve`` and
``scipy.linalg.solve_banded``.
"""

from __future__ import annotations

import numpy as np


def block_thomas(
    lower: np.ndarray,
    diag: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve many block-tridiagonal systems with 2x2 blocks.

    Shapes (``L`` lines, ``m`` block-rows):

    * ``lower``, ``diag``, ``upper``: ``(m, 2, 2)`` — the same matrix
      blocks for every line (ADI systems share coefficients per sweep);
      ``lower[0]`` and ``upper[m-1]`` are ignored;
    * ``rhs``: ``(L, m, 2)``.

    Returns ``x`` with shape ``(L, m, 2)``.
    """
    m = diag.shape[0]
    L = rhs.shape[0]
    # Forward elimination: store modified diagonal inverses and rhs.
    dmod = np.empty_like(diag)
    rmod = rhs.copy()
    cmod = np.empty_like(upper)

    inv = np.linalg.inv(diag[0])
    dmod[0] = inv
    cmod[0] = inv @ upper[0]
    rmod[:, 0] = rmod[:, 0] @ inv.T
    for i in range(1, m):
        denom = diag[i] - lower[i] @ cmod[i - 1]
        inv = np.linalg.inv(denom)
        dmod[i] = inv
        if i < m - 1:
            cmod[i] = inv @ upper[i]
        rmod[:, i] = (rmod[:, i] - rmod[:, i - 1] @ lower[i].T) @ inv.T

    # Back substitution.
    x = np.empty((L, m, 2))
    x[:, m - 1] = rmod[:, m - 1]
    for i in range(m - 2, -1, -1):
        x[:, i] = rmod[:, i] - x[:, i + 1] @ cmod[i].T
    return x


def penta_solve(bands: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve many pentadiagonal systems sharing coefficients.

    ``bands`` has shape ``(5, m)`` in ``scipy.linalg.solve_banded``
    layout for ``(l, u) = (2, 2)``: row ``k`` holds diagonal ``2 - k``
    (``bands[0, j]`` is ``A[j-2, j]``).  ``rhs`` has shape ``(L, m)``;
    returns ``(L, m)``.

    Plain elimination without pivoting: the ADI systems are strictly
    diagonally dominant, so pivoting is unnecessary (checked by tests
    against SciPy, which does pivot).
    """
    m = bands.shape[1]
    # Work on a dense copy of the five bands per row for elimination.
    a = np.zeros((m, 5))  # columns: offsets -2..+2
    for offset in range(-2, 3):
        row = 2 - offset
        for j in range(m):
            i = j - offset
            if 0 <= i < m:
                a[i, offset + 2] = bands[row, j]
    r = rhs.T.copy()  # (m, L) for row-major elimination

    # Forward elimination of the two subdiagonals.
    for i in range(1, m):
        # eliminate a[i][-1 offset] using row i-1
        factor = a[i, 1] / a[i - 1, 2]
        a[i, 1] -= factor * a[i - 1, 2]
        a[i, 2] -= factor * a[i - 1, 3]
        if i < m - 1:
            a[i, 3] -= factor * a[i - 1, 4]
        r[i] -= factor * r[i - 1]
        if i + 1 < m:
            factor2 = a[i + 1, 0] / a[i - 1, 2]
            a[i + 1, 0] -= factor2 * a[i - 1, 2]
            a[i + 1, 1] -= factor2 * a[i - 1, 3]
            a[i + 1, 2] -= factor2 * a[i - 1, 4]
            r[i + 1] -= factor2 * r[i - 1]

    # Back substitution.
    x = np.empty_like(r)
    x[m - 1] = r[m - 1] / a[m - 1, 2]
    if m >= 2:
        x[m - 2] = (r[m - 2] - a[m - 2, 3] * x[m - 1]) / a[m - 2, 2]
    for i in range(m - 3, -1, -1):
        x[i] = (r[i] - a[i, 3] * x[i + 1] - a[i, 4] * x[i + 2]) / a[i, 2]
    return x.T


def penta_bands(m: int, c: float) -> np.ndarray:
    """The ``(I + c D4)`` pentadiagonal bands used by SP's sweeps.

    ``D4 = D2^T D2`` with ``D2`` the interior second-difference operator,
    so ``I + c D4`` is symmetric positive definite: the sweep is a
    contraction (energy decreases monotonically) and elimination without
    pivoting is stable.
    """
    if m < 4:
        raise ValueError("pentadiagonal lines need m >= 4")
    bands = np.zeros((5, m))
    # +2 / -2 diagonals: c everywhere they exist.
    bands[0, 2:] = c
    bands[4, :-2] = c
    # +1 / -1 diagonals: -4c interior, -2c at the ends (D2^T D2 ends).
    bands[1, 1:] = -4.0 * c
    bands[1, 1] = -2.0 * c
    bands[1, m - 1] = -2.0 * c
    bands[3, :-1] = -4.0 * c
    bands[3, 0] = -2.0 * c
    bands[3, m - 2] = -2.0 * c
    # Main diagonal: 1 + c*[1, 5, 6, ..., 6, 5, 1].
    bands[2, :] = 1.0 + 6.0 * c
    bands[2, 0] = bands[2, m - 1] = 1.0 + c
    bands[2, 1] = bands[2, m - 2] = 1.0 + 5.0 * c
    return bands


def bands_to_dense(bands: np.ndarray) -> np.ndarray:
    """Expand ``solve_banded``-layout pentadiagonal bands to dense (for
    validation)."""
    m = bands.shape[1]
    a = np.zeros((m, m))
    for offset in range(-2, 3):
        row = 2 - offset
        for j in range(m):
            i = j - offset
            if 0 <= i < m:
                a[i, j] = bands[row, j]
    return a
