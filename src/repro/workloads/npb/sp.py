"""SP: scalar-pentadiagonal ADI pseudo-application (NPB SP).

The same ADI skeleton as BT but with *scalar pentadiagonal* line systems
(fourth-difference implicit smoothing), solved by the hand-rolled
:func:`~repro.workloads.npb.solvers.penta_solve`: x-sweep, barrier,
y-sweep, barrier, checksum reduction per time step.

Validation: one sweep is checked against ``scipy.linalg.solve_banded``
and the dense expansion; the smoothing operator must also contract the
high-frequency seminorm (it is a low-pass filter by construction).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.common import SpmdPool, WorkloadResult, slab
from repro.workloads.npb.solvers import bands_to_dense, penta_bands, penta_solve
from repro.runtime.verifier import ArmusRuntime


def run_sp(
    runtime: ArmusRuntime,
    n_tasks: int = 4,
    size: int = 24,
    steps: int = 6,
    c: float = 0.3,
    seed: int = 13,
) -> WorkloadResult:
    """Advance a scalar field ``steps`` ADI smoothing steps."""
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((size, size))
    bands = penta_bands(size, c)
    energies = np.zeros(steps + 1)
    energies[0] = float(np.sum(u**2))

    pool = SpmdPool(runtime, n_tasks, name="sp")

    def body(rank: int, pool: SpmdPool) -> None:
        rows = slab(size, rank, n_tasks)
        cols = slab(size, rank, n_tasks)
        for step in range(steps):
            # x-sweep: pentadiagonal solve along each owned row.
            u[rows] = penta_solve(bands, u[rows])
            pool.barrier_step()
            # y-sweep: along each owned column.
            u[:, cols] = penta_solve(bands, u[:, cols].T).T
            pool.barrier_step()
            local = float(np.sum(u[rows] ** 2))
            total = pool.all_reduce(rank, local)
            if rank == 0:
                energies[step + 1] = total
            pool.barrier_step()

    u0 = u.copy()
    pool.run(body)

    # Validation 1: dense replay of the first x-sweep.
    a = bands_to_dense(bands)
    ref = np.linalg.solve(a, u0.T).T
    ours = penta_solve(bands, u0)
    sweep_err = float(np.max(np.abs(ref - ours)))
    # Validation 2: the SPD smoother contracts the energy monotonically.
    smoothing = bool(np.all(np.diff(energies) <= 1e-9))
    validated = sweep_err < 1e-9 and smoothing
    return WorkloadResult(
        name="SP",
        n_tasks=n_tasks,
        checksum=float(u.sum()),
        validated=validated,
        details={"sweep_err": sweep_err, "smoothing": smoothing},
    ).require_valid()
