"""Event-loop policy selection for the asyncio backend tests.

The backend only assumes ``call_soon_threadsafe`` + futures, so the
whole suite can run under an alternative loop.  Setting
``REPRO_AIO_LOOP=uvloop`` re-runs every aio test on uvloop — the CI
job's optional leg, guarded by an install probe so the leg *skips*
(rather than fails) on platforms where uvloop cannot be installed.
"""

from __future__ import annotations

import asyncio
import os

import pytest

_REQUESTED = os.environ.get("REPRO_AIO_LOOP", "").strip().lower()


def pytest_configure(config):
    if _REQUESTED in ("", "default", "asyncio"):
        return
    if _REQUESTED != "uvloop":
        raise pytest.UsageError(
            f"unknown REPRO_AIO_LOOP={_REQUESTED!r} (try 'uvloop')"
        )
    try:
        import uvloop
    except ImportError:
        # Skip, don't fail: the CI probe should have prevented this,
        # but a developer exporting the variable without the package
        # still gets a clean run.
        config._repro_uvloop_missing = True
        return
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())


def pytest_collection_modifyitems(config, items):
    if getattr(config, "_repro_uvloop_missing", False):
        skip = pytest.mark.skip(
            reason="REPRO_AIO_LOOP=uvloop but uvloop is not installed"
        )
        for item in items:
            item.add_marker(skip)
