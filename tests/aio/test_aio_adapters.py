"""Async synchronizer adapters: phaser, barrier, latch, lock — and
mixed thread/asyncio use of one shared synchronizer."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.aio import AioBarrier, AioLatch, AioLock, AioPhaser, aio_spawn
from repro.runtime.modes import RegistrationMode
from repro.runtime.phaser import Phaser, PhaserMembershipError
from repro.runtime.verifier import ArmusRuntime, VerificationMode


@pytest.fixture
def runtime():
    rt = ArmusRuntime(mode=VerificationMode.DETECTION, interval_s=0.05).start()
    yield rt
    rt.stop()


class TestAioPhaser:
    def test_spmd_rounds(self, runtime):
        """N tasks x R verified barrier rounds, deadlock-free."""
        n, rounds = 20, 5
        progress = []

        async def main():
            ph = AioPhaser(runtime, register_self=False, name="bar")

            async def body(i):
                mine = AioPhaser(phaser=ph.phaser)
                for r in range(rounds):
                    await mine.arrive_and_wait()
                    progress.append((i, r))

            tasks = [
                aio_spawn(body, i, runtime=runtime, register=[ph], name=f"w{i}")
                for i in range(n)
            ]
            for t in tasks:
                await t.wait(20)

        asyncio.run(main())
        assert len(progress) == n * rounds
        # Rounds are barriers: nobody reaches round r+1 before everyone
        # finished round r.
        for r in range(rounds):
            chunk = progress[r * n : (r + 1) * n]
            assert {entry[1] for entry in chunk} == {r}
        assert not runtime.reports

    def test_membership_errors_propagate(self, runtime):
        async def main():
            ph = AioPhaser(runtime, register_self=False, name="p")
            with pytest.raises(PhaserMembershipError):
                await ph.arrive()

        asyncio.run(main())

    def test_bounded_producer_parks_until_consumer(self, runtime):
        """A producer more than ``bound`` ahead parks; consumer progress
        frees it — the HJ bounded-phaser semantics, async."""
        seen = []

        async def main():
            ph = AioPhaser(runtime, register_self=False, name="buf", bound=2)

            async def producer():
                mine = AioPhaser(phaser=ph.phaser)
                for i in range(5):
                    await mine.arrive()
                    seen.append(("produced", i))

            async def consumer():
                mine = AioPhaser(phaser=ph.phaser)
                for i in range(5):
                    await asyncio.sleep(0.01)
                    await mine.wait()
                    seen.append(("consumed", i))

            prod = aio_spawn(
                producer, runtime=runtime,
                register=[ph.phaser.in_mode(RegistrationMode.SIG)],
            )
            cons = aio_spawn(
                consumer, runtime=runtime,
                register=[ph.phaser.in_mode(RegistrationMode.WAIT)],
            )
            await prod.wait(20)
            await cons.wait(20)

        asyncio.run(main())
        # The producer can never run more than bound=2 items ahead.
        produced = consumed = 0
        for kind, _ in seen:
            if kind == "produced":
                produced += 1
            else:
                consumed += 1
            assert produced - consumed <= 3  # bound + the item in flight

    def test_arrive_and_deregister(self, runtime):
        async def main():
            ph = AioPhaser(runtime, register_self=False, name="join")

            async def worker():
                AioPhaser(phaser=ph.phaser).arrive_and_deregister()

            tasks = [
                aio_spawn(worker, runtime=runtime, register=[ph])
                for _ in range(3)
            ]
            for t in tasks:
                await t.wait(10)
            assert ph.registered_parties == 0

        asyncio.run(main())


class TestAioBarrier:
    def test_trips_and_cycles(self, runtime):
        async def main():
            bar = AioBarrier(3, runtime, name="cb")
            generations = []

            async def body():
                mine = AioBarrier(barrier=bar.barrier)
                for _ in range(3):
                    generations.append(await mine.wait())

            tasks = [aio_spawn(body, runtime=runtime) for _ in range(3)]
            for t in tasks:
                await t.wait(10)
            assert sorted(generations) == [0, 0, 0, 1, 1, 1, 2, 2, 2]

        asyncio.run(main())


class TestAioLatch:
    def test_wait_until_zero(self, runtime):
        async def main():
            latch = AioLatch(3, runtime, name="gate")
            released = []

            async def waiter():
                await latch.wait()
                released.append(True)

            async def counter():
                for _ in range(3):
                    await asyncio.sleep(0.005)
                    latch.count_down()

            w = aio_spawn(waiter, runtime=runtime)
            c = aio_spawn(counter, runtime=runtime)
            await c.wait(10)
            await w.wait(10)
            assert released and latch.count == 0

        asyncio.run(main())


class TestAioLock:
    def test_mutual_exclusion(self, runtime):
        async def main():
            lock = AioLock(runtime, name="mtx")
            inside = []

            async def body(i):
                async with lock:
                    inside.append(i)
                    assert len(inside) == 1, "two tasks inside the lock"
                    await asyncio.sleep(0.002)
                    inside.pop()

            tasks = [aio_spawn(body, i, runtime=runtime) for i in range(8)]
            for t in tasks:
                await t.wait(10)

        asyncio.run(main())

    def test_reentrant_for_owner(self, runtime):
        async def main():
            lock = AioLock(runtime, name="mtx")

            async def body():
                async with lock:
                    async with lock:
                        return lock.locked()

            assert await aio_spawn(body, runtime=runtime).wait(10)

        asyncio.run(main())


class TestMixedBackends:
    def test_thread_and_coroutine_share_a_phaser(self, runtime):
        """One phaser, one threaded member, one asyncio member: the
        barrier still trips (thread-side progress reaches parked
        coroutines via the poll fallback)."""
        ph = Phaser(runtime, register_self=False, name="mixed")
        gate = threading.Event()

        def threaded_body():
            gate.wait(10)
            ph.arrive_and_await_advance()

        async def main():
            async def aio_body():
                await AioPhaser(phaser=ph).arrive_and_wait()

            task = aio_spawn(aio_body, runtime=runtime, register=[ph])
            thread = runtime.spawn(threaded_body, register=[ph], name="thr")
            # The coroutine parks first (the thread is gated), so its
            # wake-up must come from thread-side progress.
            await asyncio.sleep(0.02)
            gate.set()
            await task.wait(10)
            thread.join(10)

        asyncio.run(main())
        assert not runtime.reports
