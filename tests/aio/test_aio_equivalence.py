"""Backend equivalence: the same scenario driven through the thread
backend and the aio backend must produce replay-identical traces and
identical deadlock reports (golden-diff, both codecs).

Identifiers (task ids, resource ids) come from process-global counters,
so raw recordings of the two runs differ textually; equality is over
:func:`~repro.trace.normalize.canonical_trace` forms — behavioural
identity made byte-comparable.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.aio.scenarios import crossed_pair
from repro.core.report import DeadlockAvoidedError, DeadlockError
from repro.runtime.phaser import Phaser
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.trace.codec import dumps
from repro.trace.normalize import canonical_trace
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import replay

CODECS = ("jsonl", "binary")


def thread_crossed(runtime):
    """The crossed two-phaser knot on the thread backend, blocks
    serialised exactly like :func:`repro.aio.scenarios.crossed_pair`."""
    ph1 = Phaser(runtime, register_self=False, name="p")
    ph2 = Phaser(runtime, register_self=False, name="q")
    gate = threading.Event()

    def first():
        gate.wait(10)
        ph1.arrive_and_await_advance()

    def second():
        gate.wait(10)
        deadline = time.monotonic() + 10
        while runtime.checker.dependency.blocked_count() < 1:
            if runtime.reports or time.monotonic() > deadline:
                break
            time.sleep(0.001)
        ph2.arrive_and_await_advance()

    t1 = runtime.spawn(first, register=[ph1, ph2], name="t1")
    t2 = runtime.spawn(second, register=[ph1, ph2], name="t2")
    gate.set()
    return [t1, t2]


def record_thread_run(mode):
    recorder = TraceRecorder(meta={"scenario": "crossed"})
    runtime = ArmusRuntime(
        mode=VerificationMode(mode), interval_s=0.02, poll_s=0.002,
        recorder=recorder,
    ).start()
    try:
        tasks = thread_crossed(runtime)
        for t in tasks:
            try:
                t.join(10)
            except DeadlockError:
                pass
    finally:
        runtime.stop()
    return recorder.trace(), runtime.reports


def record_aio_run(mode):
    recorder = TraceRecorder(meta={"scenario": "crossed"})
    runtime = ArmusRuntime(
        mode=VerificationMode(mode), interval_s=0.02, poll_s=0.002,
        recorder=recorder,
    ).start()

    async def main():
        tasks = crossed_pair(runtime)
        for t in tasks:
            try:
                await t.wait(10)
            except DeadlockError:
                pass

    try:
        asyncio.run(main())
    finally:
        runtime.stop()
    return recorder.trace(), runtime.reports


class TestAvoidanceGoldenDiff:
    """Avoidance runs of the crossed knot are fully deterministic, so
    the *whole* normalised trace must match byte-for-byte."""

    @pytest.fixture(scope="class")
    def runs(self):
        thread_trace, thread_reports = record_thread_run("avoidance")
        aio_trace, aio_reports = record_aio_run("avoidance")
        return thread_trace, thread_reports, aio_trace, aio_reports

    @pytest.mark.parametrize("codec", CODECS)
    def test_canonical_traces_byte_identical(self, runs, codec):
        thread_trace, _, aio_trace, _ = runs
        assert dumps(canonical_trace(thread_trace), codec) == dumps(
            canonical_trace(aio_trace), codec
        )

    def test_live_reports_agree(self, runs):
        _, thread_reports, _, aio_reports = runs
        assert len(thread_reports) == len(aio_reports) == 1
        assert thread_reports[0].avoided and aio_reports[0].avoided

    def test_replay_reports_identical(self, runs):
        thread_trace, _, aio_trace, _ = runs
        out = [
            [r.describe() for r in replay(canonical_trace(t), mode="avoidance").reports]
            for t in (thread_trace, aio_trace)
        ]
        assert out[0] == out[1]
        assert len(out[0]) == 1


class TestDetectionEquivalence:
    """Detection cancellation makes the unblock tail racy, but the
    blocks (and hence the replayed reports) are serialised: replays of
    both recordings must find the same deadlock."""

    def test_replay_reports_identical(self):
        thread_trace, _ = record_thread_run("detection")
        aio_trace, _ = record_aio_run("detection")
        results = [
            replay(canonical_trace(t), mode="detection")
            for t in (thread_trace, aio_trace)
        ]
        assert all(r.deadlocked for r in results)
        assert [r.describe() for r in results[0].reports] == [
            r.describe() for r in results[1].reports
        ]

    def test_block_prefixes_byte_identical(self):
        """Up to the knot-closing block the two recordings are
        record-for-record identical under both codecs."""
        from repro.trace.events import RecordKind, Trace

        thread_trace, _ = record_thread_run("detection")
        aio_trace, _ = record_aio_run("detection")

        def knot_prefix(trace):
            canonical = canonical_trace(trace)
            records = []
            blocks = 0
            for rec in canonical.records:
                records.append(rec)
                if rec.kind is RecordKind.BLOCK:
                    blocks += 1
                    if blocks == 2:
                        break
            return Trace(header=canonical.header, records=tuple(records))

        for codec in CODECS:
            assert dumps(knot_prefix(thread_trace), codec) == dumps(
                knot_prefix(aio_trace), codec
            )
