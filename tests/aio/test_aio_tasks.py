"""AioTask lifecycle: spawn, identity, joins, failure, cancellation."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.aio import AioTask, aio_spawn
from repro.core.report import DeadlockReport
from repro.core.report import DeadlockDetectedError
from repro.runtime.tasks import TaskFailedError, current_task, lookup_task
from repro.runtime.verifier import ArmusRuntime


@pytest.fixture
def runtime():
    rt = ArmusRuntime().start()
    yield rt
    rt.stop()


class TestSpawnAndJoin:
    def test_wait_returns_result(self, runtime):
        async def main():
            async def body(x):
                return x * 2

            task = aio_spawn(body, 21, runtime=runtime)
            return await task.wait(5)

        assert asyncio.run(main()) == 42

    def test_failure_wrapped(self, runtime):
        async def main():
            async def body():
                raise RuntimeError("boom")

            task = aio_spawn(body, runtime=runtime)
            with pytest.raises(TaskFailedError) as err:
                await task.wait(5)
            assert isinstance(err.value.cause, RuntimeError)

        asyncio.run(main())

    def test_thread_join_works_cross_thread(self, runtime):
        """The inherited, blocking join is usable from another thread."""
        results = {}

        async def main():
            async def body():
                await asyncio.sleep(0.01)
                return "done"

            task = aio_spawn(body, runtime=runtime)
            joiner = threading.Thread(
                target=lambda: results.update(value=task.join(5))
            )
            joiner.start()
            await task.wait(5)
            joiner.join(5)

        asyncio.run(main())
        assert results["value"] == "done"

    def test_wait_timeout(self, runtime):
        async def main():
            async def body():
                await asyncio.sleep(5)

            task = aio_spawn(body, runtime=runtime)
            with pytest.raises(TimeoutError):
                await task.wait(0.01)
            task._aio_task.cancel()

        asyncio.run(main())

    def test_cannot_start_directly(self, runtime):
        with pytest.raises(RuntimeError):
            AioTask(runtime).start()


class TestIdentity:
    def test_current_task_resolves_coroutine(self, runtime):
        """Inside a spawned coroutine, the runtime sees the AioTask —
        not the (adopted) loop thread."""

        async def main():
            async def body():
                return runtime.current_task()

            task = aio_spawn(body, runtime=runtime, name="me")
            seen = await task.wait(5)
            assert seen is task
            # The loop thread itself still resolves thread-wise.
            assert current_task(runtime) is not task

        asyncio.run(main())

    def test_registered_in_global_directory(self, runtime):
        async def main():
            async def body():
                await asyncio.sleep(0.01)

            task = aio_spawn(body, runtime=runtime)
            assert lookup_task(task.task_id) is task
            await task.wait(5)

        asyncio.run(main())

    def test_sibling_coroutines_have_distinct_tasks(self, runtime):
        async def main():
            async def body():
                await asyncio.sleep(0.001)
                return runtime.current_task().task_id

            tasks = [aio_spawn(body, runtime=runtime) for _ in range(10)]
            ids = [await t.wait(5) for t in tasks]
            assert len(set(ids)) == 10
            assert ids == [t.task_id for t in tasks]

        asyncio.run(main())


class TestCancellation:
    def test_cancel_delivers_report_at_next_check(self, runtime):
        from repro.core.selection import GraphModel

        report = DeadlockReport(
            tasks=("T1",), events=(), cycle=("T1",),
            model_used=GraphModel.WFG, edge_count=1,
        )

        async def main():
            started = asyncio.Event()

            async def body():
                started.set()
                while True:
                    runtime.current_task().check_cancelled()
                    await asyncio.sleep(0.001)

            task = aio_spawn(body, runtime=runtime)
            await started.wait()
            task.cancel(report)
            with pytest.raises(DeadlockDetectedError):
                await task.wait(5)

        asyncio.run(main())
