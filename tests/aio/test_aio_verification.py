"""Verified asyncio runs: avoidance, detection, recording, and the
ISSUE's ≥1000-task acceptance scenario.

The acceptance criterion, verbatim: an asyncio scenario with ≥ 1000
tasks runs to a verified deadlock report (avoidance and detection
modes), and its recorded trace replays byte-identically to the live
report through ``python -m repro.trace replay``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio.scenarios import crossed_pair, phaser_ring
from repro.core.report import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    DeadlockError,
)
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.trace.cli import main as trace_cli
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import replay

#: The acceptance floor.
N_TASKS = 1000


def run_ring(runtime, n_tasks):
    """Drive a ring to termination; returns per-task outcomes."""

    async def main():
        tasks = phaser_ring(runtime, n_tasks)
        outcomes = []
        for t in tasks:
            try:
                await t.wait(60)
                outcomes.append("clean")
            except DeadlockError as err:
                outcomes.append(err)
        return outcomes

    return asyncio.run(main())


class TestSmallRing:
    def test_detection_reports_full_cycle(self):
        runtime = ArmusRuntime(
            mode=VerificationMode.DETECTION, interval_s=0.02
        ).start()
        try:
            outcomes = run_ring(runtime, 40)
        finally:
            runtime.stop()
        assert len(runtime.reports) == 1
        assert len(runtime.reports[0].tasks) == 40
        assert any(isinstance(o, DeadlockDetectedError) for o in outcomes)

    def test_avoidance_refuses_knot_closing_block(self):
        runtime = ArmusRuntime(mode=VerificationMode.AVOIDANCE).start()
        try:
            outcomes = run_ring(runtime, 40)
        finally:
            runtime.stop()
        avoided = [o for o in outcomes if isinstance(o, DeadlockAvoidedError)]
        assert len(avoided) == 1
        assert avoided[0].report.avoided
        # Everyone else unwinds cleanly once the doomed task deregisters.
        assert outcomes.count("clean") == 39

    def test_crossed_pair_avoidance_is_deterministic(self):
        runtime = ArmusRuntime(mode=VerificationMode.AVOIDANCE).start()
        try:

            async def main():
                t1, t2 = crossed_pair(runtime)
                await t1.wait(10)
                with pytest.raises(DeadlockAvoidedError):
                    await t2.wait(10)

            asyncio.run(main())
        finally:
            runtime.stop()
        assert len(runtime.reports) == 1


class TestRecordedRing:
    """Live aio runs record the standard trace format; offline replay
    reproduces the live verdict and report."""

    @pytest.mark.parametrize("mode", ["detection", "avoidance"])
    def test_replay_matches_live_report(self, tmp_path, mode):
        recorder = TraceRecorder(
            meta={"scenario": "aio-ring", "expect_deadlock": True}
        )
        runtime = ArmusRuntime(
            mode=VerificationMode(mode), interval_s=0.02, recorder=recorder
        ).start()
        try:
            run_ring(runtime, 30)
        finally:
            runtime.stop()
        assert len(runtime.reports) == 1
        for suffix in (".jsonl", ".trace"):
            path = recorder.save(tmp_path / f"ring{suffix}")
            outcome = replay(path, mode=mode)
            assert [r.describe() for r in outcome.reports] == [
                runtime.reports[0].describe()
            ]


class TestThousandTaskAcceptance:
    def _run(self, mode, tmp_path, capsys):
        recorder = TraceRecorder(
            meta={"scenario": f"aio-ring-{N_TASKS}", "expect_deadlock": True}
        )
        runtime = ArmusRuntime(
            mode=VerificationMode(mode),
            interval_s=0.05,
            recorder=recorder,
        ).start()
        try:
            outcomes = run_ring(runtime, N_TASKS)
        finally:
            runtime.stop()
        # Every task terminated; at least one observed the report.
        assert len(outcomes) == N_TASKS
        assert any(isinstance(o, DeadlockError) for o in outcomes)
        assert len(runtime.reports) == 1
        live = runtime.reports[0]

        # Offline: the recorded trace replays to the same report...
        path = recorder.save(tmp_path / "ring.trace")
        outcome = replay(path, mode=mode)
        assert [r.describe() for r in outcome.reports] == [live.describe()]

        # ...and the CLI's replay output carries it byte-identically.
        assert trace_cli(["replay", str(path), "--mode", mode]) == 0
        assert live.describe() in capsys.readouterr().out
        return live

    def test_detection_thousand_tasks(self, tmp_path, capsys):
        live = self._run("detection", tmp_path, capsys)
        assert len(live.tasks) == N_TASKS

    def test_avoidance_thousand_tasks(self, tmp_path, capsys):
        live = self._run("avoidance", tmp_path, capsys)
        assert live.avoided
        assert len(live.tasks) == N_TASKS


class TestIncrementalRuntime:
    """The asyncio driver feeding the delta-maintained checker: the
    coroutine observer's begin/end_blocked hooks ARE the delta contract,
    so ``incremental=True`` needs no aio-specific plumbing."""

    def test_incremental_detection_reports_the_ring(self):
        from repro.core.incremental import IncrementalChecker

        runtime = ArmusRuntime(
            mode=VerificationMode.DETECTION, interval_s=0.02,
            incremental=True,
        ).start()
        try:
            outcomes = run_ring(runtime, 40)
        finally:
            runtime.stop()
        assert isinstance(runtime.checker, IncrementalChecker)
        assert len(runtime.reports) == 1
        assert len(runtime.reports[0].tasks) == 40
        assert any(isinstance(o, DeadlockDetectedError) for o in outcomes)

    def test_incremental_avoidance_refuses_the_ring(self):
        runtime = ArmusRuntime(
            mode=VerificationMode.AVOIDANCE, incremental=True
        ).start()
        try:
            outcomes = run_ring(runtime, 40)
        finally:
            runtime.stop()
        assert runtime.reports and runtime.reports[0].avoided
        assert any(isinstance(o, DeadlockAvoidedError) for o in outcomes)
        # The refusal withdrew the doomed delta: no cycle remains.
        assert runtime.checker.check() is None
