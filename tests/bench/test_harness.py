"""Harness smoke tests: every experiment runner produces sane data.

These use 1-2 samples and the smallest kernels — the goal is shape
(keys, validation, sign conventions), not statistics; the real runs live
in ``benchmarks/`` and ``python -m repro.bench.tables``.
"""

from __future__ import annotations

import pytest

from repro.bench import harness
from repro.core.selection import GraphModel


class TestLocalRunners:
    def test_run_local_kernel_all_modes(self):
        for mode in ("off", "detection", "avoidance"):
            result = harness.run_local_kernel("CG", mode, 2)
            assert result.validated

    def test_overhead_table_shape(self):
        data = harness.overhead_table(
            "detection", task_counts=(2,), samples=1, kernels=("RT",)
        )
        assert set(data) == {"RT"}
        assert set(data["RT"]) == {2}
        assert isinstance(data["RT"][2], float)

    def test_scaling_series_shape(self):
        data = harness.scaling_series(
            task_counts=(2,), samples=1, kernels=("SP",)
        )
        assert set(data["SP"]) == {"off", "detection", "avoidance"}
        assert data["SP"]["off"][2].mean > 0


class TestDistributedRunner:
    def test_comparison_shape(self):
        data = harness.distributed_comparison(
            n_places=2, samples=1, kernels=("STREAM",)
        )
        row = data["STREAM"]
        assert row["unchecked"].mean > 0
        assert row["checked"].mean > 0
        assert isinstance(row["ci_overlap"], bool)


class TestModelChoiceRunners:
    def test_course_kernel_runner(self):
        result, runtime = harness.run_course_kernel("SE", "avoidance")
        assert result.validated
        assert runtime.stats.checks > 0

    def test_model_choice_shape(self):
        data = harness.model_choice_comparison(
            "detection", samples=1, kernels=("PS",)
        )
        assert set(data["PS"]) == {"Unchecked", "Auto", "SG", "WFG"}

    def test_edge_count_table_shape(self):
        data = harness.edge_count_table(samples=1, kernels=("PS",))
        for sel in ("Auto", "SG", "WFG"):
            row = data["PS"][sel]
            assert row["edges"] >= 0
            assert "avoidance_pct" in row and "detection_pct" in row

    def test_ps_wfg_dwarfs_sg(self):
        """The Table 3 headline at test scale: PS's WFG is at least an
        order of magnitude larger than its SG."""
        data = harness.edge_count_table(samples=1, kernels=("PS",))
        assert data["PS"]["WFG"]["edges"] > 10 * max(
            data["PS"]["SG"]["edges"], 1.0
        )
        # ... and Auto tracked the small model.
        assert data["PS"]["Auto"]["edges"] <= 2 * max(
            data["PS"]["SG"]["edges"], 1.0
        )


class TestAblations:
    def test_representation_ablation(self):
        stats = harness.representation_ablation(n_tasks=4, steps=10)
        assert stats["membership_ops"] > stats["event_ops"]
        assert stats["ratio"] > 1.0

    def test_threshold_ablation_shape(self):
        data = harness.threshold_ablation(
            factors=(0.5, 4.0), kernels=("PS",), samples=1
        )
        assert set(data["PS"]) == {0.5, 4.0}
        for row in data["PS"].values():
            assert row["mean_s"] > 0
