"""ASCII chart renderer tests."""

from __future__ import annotations

from repro.bench.plots import BAR_WIDTH, bar_chart
from repro.bench.stats import Measurement


def m(label: str, value: float) -> Measurement:
    return Measurement(label, [value, value])


class TestBarChart:
    def test_renders_all_series(self):
        out = bar_chart(
            {"PS": {"Auto": m("a", 0.1), "WFG": m("w", 0.2)}},
            series_order=["Auto", "WFG"],
        )
        assert "PS" in out
        assert "Auto" in out and "WFG" in out
        assert "100.0ms" in out and "200.0ms" in out

    def test_bars_scale_to_global_peak(self):
        out = bar_chart(
            {
                "A": {"x": m("x", 0.5)},
                "B": {"x": m("x", 1.0)},
            },
            series_order=["x"],
        )
        lines = [l for l in out.splitlines() if "#" in l]
        short = lines[0].count("#")
        long = lines[1].count("#")
        assert long == BAR_WIDTH
        assert abs(short - BAR_WIDTH / 2) <= 1

    def test_missing_series_skipped(self):
        out = bar_chart(
            {"A": {"x": m("x", 1.0)}},
            series_order=["x", "y"],
        )
        assert "y" not in out

    def test_empty_data(self):
        assert bar_chart({}, series_order=[]) == "(no data)"

    def test_minimum_one_character_bar(self):
        out = bar_chart(
            {"A": {"tiny": m("t", 0.0001), "big": m("b", 10.0)}},
            series_order=["tiny", "big"],
        )
        tiny_line = next(l for l in out.splitlines() if "tiny" in l)
        assert "#" in tiny_line
