"""Measurement-methodology tests (Georges et al.)."""

from __future__ import annotations

import math

import pytest

from repro.bench.stats import Measurement, measure, relative_overhead


class TestMeasurement:
    def test_mean_and_std(self):
        m = Measurement("x", [1.0, 2.0, 3.0])
        assert m.mean == 2.0
        assert math.isclose(m.std, 1.0)

    def test_ci_is_z_based(self):
        m = Measurement("x", [1.0, 2.0, 3.0])
        expected = 1.959963984540054 * 1.0 / math.sqrt(3)
        assert math.isclose(m.ci95, expected)

    def test_degenerate_samples(self):
        assert Measurement("x", []).mean == 0.0
        assert Measurement("x", [5.0]).ci95 == 0.0

    def test_overlap(self):
        a = Measurement("a", [1.0, 1.1, 0.9])
        b = Measurement("b", [1.05, 1.15, 0.95])
        c = Measurement("c", [9.0, 9.1, 8.9])
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_str(self):
        assert "ms" in str(Measurement("x", [0.01, 0.02]))


class TestMeasure:
    def test_collects_requested_samples(self):
        calls = []
        m = measure(lambda: calls.append(1), samples=5, discard_first=True)
        assert len(m.samples) == 5
        assert len(calls) == 6  # one discarded warm-up run

    def test_no_discard(self):
        calls = []
        measure(lambda: calls.append(1), samples=3, discard_first=False)
        assert len(calls) == 3

    def test_timings_positive(self):
        m = measure(lambda: sum(range(1000)), samples=3)
        assert all(s > 0 for s in m.samples)


class TestOverhead:
    def test_relative_overhead(self):
        base = Measurement("b", [1.0, 1.0])
        checked = Measurement("c", [1.5, 1.5])
        assert math.isclose(relative_overhead(base, checked), 50.0)

    def test_negative_overhead_is_noise_not_error(self):
        base = Measurement("b", [1.0])
        faster = Measurement("c", [0.9])
        assert relative_overhead(base, faster) < 0

    def test_zero_base(self):
        assert relative_overhead(Measurement("b", []), Measurement("c", [1])) == 0.0
