"""Shared fixtures: isolated runtimes with guaranteed teardown.

Deadlock tests intentionally block threads; every runtime is created
through the ``runtime_factory`` fixture so monitors are stopped and
polling is fast regardless of test outcome.  Threads themselves are
daemons and cannot outlive the process.
"""

from __future__ import annotations

import pytest

from repro.core.selection import GraphModel
from repro.runtime.verifier import ArmusRuntime, VerificationMode


@pytest.fixture
def runtime_factory():
    """Create runtimes with fast polling; stop them all afterwards."""
    created = []

    def make(
        mode: str = "off",
        model: GraphModel = GraphModel.AUTO,
        interval_s: float = 0.02,
        **kwargs,
    ) -> ArmusRuntime:
        runtime = ArmusRuntime(
            mode=VerificationMode(mode),
            model=model,
            interval_s=interval_s,
            poll_s=0.002,
            **kwargs,
        )
        runtime.start()
        created.append(runtime)
        return runtime

    yield make
    for runtime in created:
        runtime.stop()


@pytest.fixture
def detection_runtime(runtime_factory):
    return runtime_factory("detection")


@pytest.fixture
def avoidance_runtime(runtime_factory):
    return runtime_factory("avoidance")


@pytest.fixture
def off_runtime(runtime_factory):
    return runtime_factory("off")
