"""apply_batch property tests: batched == stepwise, always.

:meth:`~repro.core.incremental.IncrementalChecker.apply_batch` promises
that applying an ordered delta sequence in one call is *observationally
equivalent* to applying it one
``set_blocked``/``clear``/``restore`` call at a time: the same final
store state, the same verdicts and canonical reports afterwards (plain
and sharded), and the same ``repro_incremental_delta_ops_total``
accounting — only the amount of graph maintenance paid may differ.
These tests drive randomised op sequences through one checker per
strategy, slicing the stream into random batch sizes, and compare after
every batch boundary.
"""

from __future__ import annotations

import random

import pytest

from repro.core.events import BlockedStatus, Event
from repro.core.incremental import IncrementalChecker

OPS_METRIC_LABELS = ("set_blocked", "clear", "restore")


def random_status(rng, phasers):
    waits = frozenset(
        Event(rng.choice(phasers), rng.randint(1, 3))
        for _ in range(rng.randint(1, 2))
    )
    registered = {
        p: rng.randint(0, 3)
        for p in rng.sample(phasers, rng.randint(0, len(phasers)))
    }
    return BlockedStatus(waits=waits, registered=registered)


def random_ops(rng, count, tasks, phasers):
    """A random ``(op, task, status)`` sequence for apply_batch."""
    ops = []
    blocked = set()
    restorable = {}
    for _ in range(count):
        roll = rng.random()
        if roll < 0.6 or not blocked:
            task = rng.choice(tasks)
            status = random_status(rng, phasers)
            ops.append(("set", task, status))
            blocked.add(task)
            restorable.setdefault(task, status)
        elif roll < 0.85:
            task = rng.choice(sorted(blocked))
            ops.append(("clear", task, None))
            blocked.discard(task)
        else:
            task = rng.choice(sorted(restorable))
            ops.append(("restore", task, restorable[task]))
            blocked.add(task)
    return ops


def apply_stepwise(checker, ops):
    for op, task, status in ops:
        if op == "set":
            checker.set_blocked(task, status)
        elif op == "clear":
            checker.clear(task)
        else:
            checker.restore(task, status)


def delta_op_totals(checker):
    return {
        label: checker._m_deltas.value(op=label)
        for label in OPS_METRIC_LABELS
    }


def assert_checkers_equivalent(batched, stepwise):
    assert batched.check() == stepwise.check()
    assert batched.check_sharded() == stepwise.check_sharded()
    assert batched.wfg_edge_count == stepwise.wfg_edge_count
    assert batched.mutation_epoch == stepwise.mutation_epoch
    assert delta_op_totals(batched) == delta_op_totals(stepwise)


class TestApplyBatchEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_batches_match_stepwise(self, seed):
        rng = random.Random(seed)
        tasks = [f"t{i}" for i in range(8)]
        phasers = [f"p{i}" for i in range(4)]
        ops = random_ops(rng, 200, tasks, phasers)
        batched = IncrementalChecker()
        stepwise = IncrementalChecker()
        pos = 0
        while pos < len(ops):
            size = rng.randint(1, 12)
            chunk = ops[pos:pos + size]
            pos += size
            batched.apply_batch(chunk)
            apply_stepwise(stepwise, chunk)
            assert_checkers_equivalent(batched, stepwise)

    @pytest.mark.parametrize("seed", range(4))
    def test_whole_stream_as_one_batch(self, seed):
        """The extreme slicing: the entire op stream in a single call."""
        rng = random.Random(100 + seed)
        tasks = [f"t{i}" for i in range(6)]
        phasers = [f"p{i}" for i in range(3)]
        ops = random_ops(rng, 150, tasks, phasers)
        batched = IncrementalChecker()
        stepwise = IncrementalChecker()
        batched.apply_batch(ops)
        apply_stepwise(stepwise, ops)
        assert_checkers_equivalent(batched, stepwise)

    def test_empty_batch_is_a_noop(self):
        checker = IncrementalChecker()
        before = checker.mutation_epoch
        checker.apply_batch([])
        assert checker.mutation_epoch == before
        assert delta_op_totals(checker) == {
            "set_blocked": 0, "clear": 0, "restore": 0
        }

    def test_unknown_op_raises_and_accounts_partial_batch(self):
        """A failing op mid-batch must not lose the ops already applied
        (the per-op path counts before applying, so accounting matches)
        and must leave batch mode balanced for later calls."""
        checker = IncrementalChecker()
        status = BlockedStatus(
            waits=frozenset({Event("p", 1)}), registered={"p": 1}
        )
        with pytest.raises(ValueError, match="unknown batch op"):
            checker.apply_batch([
                ("set", "a", status),
                ("frobnicate", "b", None),
            ])
        assert delta_op_totals(checker)["set_blocked"] == 1
        # the structure is out of batch mode: a later batch still works
        checker.apply_batch([("clear", "a", None)])
        assert checker.check() is None

    @pytest.mark.parametrize("seed", range(3))
    def test_batches_against_deadlock_traces(self, seed):
        """Sequences biased to build waits-for knots: reports (not just
        verdict booleans) must match stepwise application exactly."""
        rng = random.Random(500 + seed)
        tasks = [f"t{i}" for i in range(5)]
        phasers = [f"p{i}" for i in range(2)]  # tiny pool: knots likely
        ops = random_ops(rng, 120, tasks, phasers)
        batched = IncrementalChecker()
        stepwise = IncrementalChecker()
        deadlocks = 0
        pos = 0
        while pos < len(ops):
            chunk = ops[pos:pos + rng.randint(2, 10)]
            pos += len(chunk)
            batched.apply_batch(chunk)
            apply_stepwise(stepwise, chunk)
            a, b = batched.check(), stepwise.check()
            assert a == b
            deadlocks += a is not None
        assert deadlocks > 0, "sequence never deadlocked; weak test"
