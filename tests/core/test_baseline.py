"""Membership-tracking baseline tests (ablation D1's comparator)."""

from __future__ import annotations

import pytest

from repro.core.baseline import MembershipTracker
from repro.core.cycles import has_cycle


class TestBookkeeping:
    def test_every_mutation_counts(self):
        tracker = MembershipTracker()
        tracker.create("b")
        tracker.register("b", "t1")
        tracker.register("b", "t2")
        tracker.block("t1", "b")
        tracker.arrive("b", "t1")
        assert tracker.ops == 5

    def test_arrival_of_non_member_rejected(self):
        tracker = MembershipTracker()
        tracker.create("b")
        with pytest.raises(ValueError):
            tracker.arrive("b", "ghost")

    def test_release_when_all_arrive(self):
        tracker = MembershipTracker()
        tracker.create("b")
        for t in ("t1", "t2"):
            tracker.register("b", t)
        tracker.block("t1", "b")
        tracker.arrive("b", "t1")
        assert tracker.blocked_count() == 1
        tracker.block("t2", "b")
        tracker.arrive("b", "t2")
        assert tracker.blocked_count() == 0  # barrier tripped

    def test_deregistration_can_release(self):
        """Dynamic membership: the last missing member leaving completes
        the synchronisation — the case static-membership tools miss."""
        tracker = MembershipTracker()
        tracker.create("b")
        for t in ("t1", "t2"):
            tracker.register("b", t)
        tracker.block("t1", "b")
        tracker.arrive("b", "t1")
        tracker.deregister("b", "t2")
        assert tracker.blocked_count() == 0


class TestWfgAgreement:
    def test_blocked_waits_for_non_arrived(self):
        tracker = MembershipTracker()
        tracker.create("b")
        for t in ("t1", "t2", "t3"):
            tracker.register("b", t)
        tracker.block("t1", "b")
        tracker.arrive("b", "t1")
        wfg = tracker.wfg()
        assert wfg.has_edge("t1", "t2")
        assert wfg.has_edge("t1", "t3")
        assert not wfg.has_edge("t1", "t1")

    def test_cross_barrier_cycle(self):
        """The two-barrier crossed deadlock appears as a WFG cycle in the
        baseline too — it is the bookkeeping cost, not the verdict, that
        differs from the event-based representation."""
        tracker = MembershipTracker()
        for b in ("a", "b"):
            tracker.create(b)
            tracker.register(b, "t1")
            tracker.register(b, "t2")
        tracker.block("t1", "a")
        tracker.arrive("a", "t1")
        tracker.block("t2", "b")
        tracker.arrive("b", "t2")
        assert has_cycle(tracker.wfg())
