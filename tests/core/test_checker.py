"""Deadlock-checker tests: detection checks, avoidance checks, stats."""

from __future__ import annotations

from repro.core.checker import DeadlockChecker
from repro.core.dependency import ResourceDependency
from repro.core.events import Event, waiting_on
from repro.core.selection import GraphModel


def deadlocked_checker(model=GraphModel.AUTO) -> DeadlockChecker:
    """Example 4.1 pre-loaded into a checker."""
    checker = DeadlockChecker(model=model)
    for i in (1, 2, 3):
        checker.set_blocked(f"t{i}", waiting_on("pc", 1, pc=1, pb=0))
    checker.set_blocked("t4", waiting_on("pb", 1, pc=0, pb=1))
    return checker


class TestDetection:
    def test_finds_example_41(self):
        report = deadlocked_checker().check()
        assert report is not None
        assert set(report.tasks) == {"t1", "t2", "t3", "t4"}
        assert set(report.events) == {Event("pc", 1), Event("pb", 1)}
        assert not report.avoided

    def test_all_models_find_it(self):
        for model in (GraphModel.WFG, GraphModel.SG, GraphModel.AUTO):
            report = deadlocked_checker(model).check()
            assert report is not None
            assert report.model_used in (GraphModel.WFG, GraphModel.SG)

    def test_no_deadlock_without_cycle(self):
        checker = DeadlockChecker()
        checker.set_blocked("t1", waiting_on("p", 1, p=1))
        assert checker.check() is None

    def test_empty_state(self):
        assert DeadlockChecker().check() is None

    def test_revalidation_discards_stale_cycle(self):
        checker = deadlocked_checker()
        snapshot = checker.dependency.snapshot()
        # t4 unblocks after the snapshot was taken.
        checker.clear("t4")
        assert checker.check(snapshot=snapshot, revalidate=True) is None
        # Without revalidation the stale snapshot still reports.
        assert checker.check(snapshot=snapshot, revalidate=False) is not None

    def test_report_describes_cycle(self):
        report = deadlocked_checker().check()
        text = report.describe()
        assert "deadlock detected" in text
        assert "cycle" in text


class TestAvoidance:
    def test_safe_block_publishes_status(self):
        checker = DeadlockChecker()
        report, stamped = checker.check_before_block(
            "t1", waiting_on("p", 1, p=1)
        )
        assert report is None
        assert stamped is not None
        assert checker.dependency.blocked_count() == 1

    def test_deadlocking_block_is_refused_and_withdrawn(self):
        checker = DeadlockChecker()
        for i in (1, 2, 3):
            checker.set_blocked(f"t{i}", waiting_on("pc", 1, pc=1, pb=0))
        report, stamped = checker.check_before_block(
            "t4", waiting_on("pb", 1, pc=0, pb=1)
        )
        assert report is not None
        assert report.avoided
        assert stamped is None
        # The doomed status was withdrawn: t4 is not recorded as blocked.
        assert checker.dependency.blocked_count() == 3
        # And the remaining state is cycle-free.
        assert checker.check() is None

    def test_avoidance_cycle_involves_blocking_task(self):
        checker = DeadlockChecker(model=GraphModel.WFG)
        checker.set_blocked("a", waiting_on("p", 1, p=1, q=0))
        report, _ = checker.check_before_block(
            "b", waiting_on("q", 1, q=1, p=0)
        )
        assert report is not None
        assert "b" in report.tasks

    def test_sequential_blocks_last_one_loses(self):
        """Every block is vetted, so the task completing the cycle gets
        the report, regardless of order."""
        checker = DeadlockChecker()
        r1, _ = checker.check_before_block("a", waiting_on("p", 1, p=1, q=0))
        assert r1 is None
        r2, _ = checker.check_before_block("b", waiting_on("q", 1, q=1, p=0))
        assert r2 is not None


class TestStats:
    def test_counts_checks_and_edges(self):
        checker = deadlocked_checker()
        checker.check()
        checker.check()
        stats = checker.stats
        assert stats.checks == 2
        assert stats.cycles_found == 2
        # Two identical checks: both contributed to the running sum.
        assert stats.max_edges > 0
        assert stats.edges_total == stats.max_edges * 2
        assert sum(stats.model_histogram().values()) == 2
        assert stats.mean_edges > 0
        assert stats.max_edges >= stats.mean_edges

    def test_model_histogram(self):
        checker = deadlocked_checker(GraphModel.SG)
        checker.check()
        hist = checker.stats.model_histogram()
        assert hist[GraphModel.SG] == 1

    def test_reset_stats(self):
        checker = deadlocked_checker()
        checker.check()
        old = checker.reset_stats()
        assert old.checks == 1
        assert checker.stats.checks == 0

    def test_merge(self):
        c1 = deadlocked_checker()
        c2 = deadlocked_checker()
        c1.check()
        c2.check()
        merged = c1.reset_stats()
        merged.merge(c2.reset_stats())
        assert merged.checks == 2


class TestSharedDependency:
    def test_two_checkers_one_store(self):
        """Distributed sites share one dependency store through separate
        checkers (Section 5.2)."""
        store = ResourceDependency()
        site_a = DeadlockChecker(dependency=store)
        site_b = DeadlockChecker(dependency=store)
        site_a.set_blocked("a", waiting_on("p", 1, p=1, q=0))
        site_b.set_blocked("b", waiting_on("q", 1, q=1, p=0))
        assert site_a.check() is not None
        assert site_b.check() is not None
