"""Stateful property test: the checker under arbitrary op interleavings.

A hypothesis state machine drives ``set_blocked``/``clear``/``check``/
``check_before_block`` in arbitrary orders and maintains a parallel
oracle (a plain dict of statuses).  Invariants after every step:

* the dependency store's content equals the oracle;
* ``check()`` agrees with a from-scratch cycle search on the oracle;
* all three graph models agree on the verdict;
* an accepted ``check_before_block`` leaves a cycle-free state, and a
  refused one leaves the store unchanged.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.checker import DeadlockChecker
from repro.core.cycles import has_cycle
from repro.core.dependency import DependencySnapshot
from repro.core.events import BlockedStatus, Event
from repro.core.graphs import build_sg, build_wfg
from repro.core.selection import GraphModel

TASKS = [f"t{i}" for i in range(5)]
PHASERS = [f"p{i}" for i in range(3)]

statuses = st.builds(
    BlockedStatus,
    waits=st.sets(
        st.builds(
            Event,
            phaser=st.sampled_from(PHASERS),
            phase=st.integers(0, 3),
        ),
        min_size=1,
        max_size=2,
    ).map(frozenset),
    registered=st.dictionaries(
        st.sampled_from(PHASERS), st.integers(0, 3), max_size=3
    ),
)


class CheckerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.checker = DeadlockChecker(model=GraphModel.AUTO)
        self.oracle: dict = {}

    # -- operations --------------------------------------------------------
    @rule(task=st.sampled_from(TASKS), status=statuses)
    def block(self, task, status):
        stamped = self.checker.set_blocked(task, status)
        self.oracle[task] = stamped

    @rule(task=st.sampled_from(TASKS))
    def unblock(self, task):
        self.checker.clear(task)
        self.oracle.pop(task, None)

    @rule()
    def detection_check(self):
        report = self.checker.check()
        assert (report is not None) == self._oracle_cyclic()

    @rule(task=st.sampled_from(TASKS), status=statuses)
    def avoidance_check(self, task, status):
        before = dict(self.oracle)
        report, stamped = self.checker.check_before_block(task, status)
        if report is None:
            # Accepted: published, and the resulting state is cycle-free.
            assert stamped is not None
            self.oracle[task] = stamped
            assert not self._oracle_cyclic()
        else:
            # Refused: the store must be exactly as before.
            assert report.avoided
            snapshot = self.checker.dependency.snapshot()
            assert set(snapshot.statuses) == set(before)

    # -- invariants -----------------------------------------------------------
    @invariant()
    def store_matches_oracle(self):
        snapshot = self.checker.dependency.snapshot()
        assert snapshot.statuses == self.oracle

    @invariant()
    def models_agree(self):
        snapshot = DependencySnapshot(statuses=dict(self.oracle))
        assert has_cycle(build_wfg(snapshot)) == has_cycle(build_sg(snapshot))

    # -- helpers -----------------------------------------------------------------
    def _oracle_cyclic(self) -> bool:
        snapshot = DependencySnapshot(statuses=dict(self.oracle))
        return has_cycle(build_wfg(snapshot))


CheckerMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestCheckerStateful = CheckerMachine.TestCase
