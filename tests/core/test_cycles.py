"""Cycle-detection tests, cross-checked against networkx."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.cycles import (
    cycle_reachable_from,
    cycle_through,
    find_cycle,
    has_cycle,
    is_cycle,
    is_walk,
    strongly_connected_components,
)
from repro.core.graphs import DiGraph


def make_graph(edges) -> DiGraph:
    g = DiGraph()
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestHasCycle:
    def test_empty(self):
        assert not has_cycle(DiGraph())

    def test_dag(self):
        g = make_graph([(1, 2), (2, 3), (1, 3)])
        assert not has_cycle(g)

    def test_self_loop(self):
        g = make_graph([(1, 1)])
        assert has_cycle(g)

    def test_two_cycle(self):
        g = make_graph([(1, 2), (2, 1)])
        assert has_cycle(g)

    def test_long_cycle_with_tail(self):
        g = make_graph([(0, 1), (1, 2), (2, 3), (3, 1)])
        assert has_cycle(g)

    def test_deep_chain_no_recursion_limit(self):
        """Iterative Tarjan must handle graphs deeper than Python's
        recursion limit."""
        n = 5000
        g = make_graph([(i, i + 1) for i in range(n)])
        assert not has_cycle(g)
        g.add_edge(n, 0)
        assert has_cycle(g)


class TestFindCycle:
    def test_none_on_acyclic(self):
        assert find_cycle(make_graph([(1, 2), (2, 3)])) is None

    def test_returned_walk_is_a_cycle(self):
        g = make_graph([(1, 2), (2, 3), (3, 1), (3, 4)])
        cycle = find_cycle(g)
        assert cycle is not None
        assert is_cycle(g, cycle)

    def test_self_loop_cycle(self):
        g = make_graph([(1, 1)])
        assert find_cycle(g) == [1, 1]


class TestCycleThrough:
    def test_vertex_on_cycle(self):
        g = make_graph([(1, 2), (2, 3), (3, 1)])
        for v in (1, 2, 3):
            cycle = cycle_through(g, v)
            assert cycle is not None
            assert v in cycle
            assert is_cycle(g, cycle)

    def test_vertex_off_cycle(self):
        g = make_graph([(0, 1), (1, 2), (2, 1)])
        assert cycle_through(g, 0) is None

    def test_unknown_vertex(self):
        assert cycle_through(make_graph([(1, 2)]), 99) is None

    def test_nested_sub_cycles(self):
        """The regression shape: an SCC whose greedy walk could close a
        sub-cycle avoiding the requested vertex."""
        g = make_graph(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "c"), ("d", "e"), ("e", "a")]
        )
        cycle = cycle_through(g, "a")
        assert cycle is not None
        assert "a" in cycle
        assert is_cycle(g, cycle)

    def test_reachable_but_not_through(self):
        g = make_graph([(0, 1), (1, 2), (2, 1)])
        assert cycle_through(g, 0) is None
        reach = cycle_reachable_from(g, 0)
        assert reach is not None
        assert is_cycle(g, reach)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_graphs_agree(self, seed: int):
        rng = random.Random(seed)
        n = rng.randint(2, 30)
        edges = set()
        for _ in range(rng.randint(1, 4 * n)):
            edges.add((rng.randrange(n), rng.randrange(n)))
        g = make_graph(edges)
        ref = nx.DiGraph(list(edges))
        assert has_cycle(g) == (not nx.is_directed_acyclic_graph(ref))

    @pytest.mark.parametrize("seed", range(10))
    def test_scc_partition_agrees(self, seed: int):
        rng = random.Random(seed + 100)
        n = rng.randint(2, 25)
        edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)}
        g = make_graph(edges)
        ref = nx.DiGraph(list(edges))
        ref.add_nodes_from(g.vertices)
        ours = {frozenset(c) for c in strongly_connected_components(g)}
        theirs = {frozenset(c) for c in nx.strongly_connected_components(ref)}
        assert ours == theirs


class TestWalkPredicates:
    def test_is_walk(self):
        g = make_graph([(1, 2), (2, 3)])
        assert is_walk(g, [1, 2, 3])
        assert not is_walk(g, [1, 3])
        assert not is_walk(g, [1])

    def test_is_cycle(self):
        g = make_graph([(1, 2), (2, 1)])
        assert is_cycle(g, [1, 2, 1])
        assert not is_cycle(g, [1, 2])


class TestCanonicalExtraction:
    """Cycle extraction must be bit-identical across processes: the
    prerequisite for deterministic parallel-replay merging."""

    def test_rotation_starts_at_minimal_vertex(self):
        from repro.core.cycles import canonical_rotation

        assert canonical_rotation(["c", "a", "b", "c"]) == ["a", "b", "c", "a"]
        assert canonical_rotation(["a", "b", "a"]) == ["a", "b", "a"]
        assert canonical_rotation(["z", "z"]) == ["z", "z"]

    def test_rotation_preserves_edges(self):
        g = make_graph([("c", "a"), ("a", "b"), ("b", "c")])
        cycle = find_cycle(g)
        assert cycle[0] == cycle[-1] == "a"
        assert is_cycle(g, cycle)

    def test_find_cycle_ignores_insertion_order(self):
        """The same edge set, inserted in different orders, yields the
        same extracted cycle."""
        edges = [("t3", "t1"), ("t1", "t2"), ("t2", "t3"), ("t0", "t1")]
        baseline = find_cycle(make_graph(edges))
        for _ in range(20):
            random.shuffle(edges)
            assert find_cycle(make_graph(edges)) == baseline

    def test_picks_component_with_minimal_vertex(self):
        """Two disjoint cycles: the one holding the globally minimal
        vertex wins, regardless of traversal order."""
        g = make_graph([("x", "y"), ("y", "x"), ("a", "b"), ("b", "a")])
        assert find_cycle(g) == ["a", "b", "a"]

    def test_cycle_through_is_rotated_and_contains_vertex(self):
        g = make_graph([("c", "a"), ("a", "b"), ("b", "c")])
        cycle = cycle_through(g, "b")
        assert cycle[0] == cycle[-1] == "a"
        assert "b" in cycle
        assert is_cycle(g, cycle)

    def test_cross_process_stability(self):
        """The extracted cycle is identical under a different hash seed
        (set iteration order is the historic nondeterminism source)."""
        import os
        import pathlib
        import subprocess
        import sys

        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        prog = (
            "from repro.core.cycles import find_cycle\n"
            "from repro.core.graphs import DiGraph\n"
            "import json\n"
            "g = DiGraph()\n"
            "for u, v in [('t%d' % i, 't%d' % ((i + 1) % 7)) for i in range(7)]:\n"
            "    g.add_edge(u, v)\n"
            "g.add_edge('t2', 't5'); g.add_edge('t5', 't2')\n"
            "print(json.dumps(find_cycle(g)))\n"
        )
        outs = set()
        for seed in ("0", "1", "random"):
            proc = subprocess.run(
                [sys.executable, "-c", prog],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONHASHSEED": seed, "PYTHONPATH": src},
                check=True,
            )
            outs.add(proc.stdout.strip())
        assert len(outs) == 1, outs
