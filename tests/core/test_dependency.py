"""Unit tests for the resource-dependency store and snapshots."""

from __future__ import annotations

import threading

from repro.core.dependency import ResourceDependency
from repro.core.events import Event, waiting_on


def example_41() -> ResourceDependency:
    """The paper's Example 4.1: three workers on pc@1, driver on pb@1."""
    dep = ResourceDependency()
    for i in (1, 2, 3):
        dep.set_blocked(f"t{i}", waiting_on("pc", 1, pc=1, pb=0))
    dep.set_blocked("t4", waiting_on("pb", 1, pc=0, pb=1))
    return dep


class TestStore:
    def test_set_and_clear(self):
        dep = ResourceDependency()
        dep.set_blocked("t", waiting_on("p", 1, p=1))
        assert dep.blocked_count() == 1
        dep.clear("t")
        assert dep.blocked_count() == 0

    def test_clear_unknown_is_noop(self):
        ResourceDependency().clear("ghost")

    def test_snapshot_is_isolated(self):
        dep = ResourceDependency()
        dep.set_blocked("t", waiting_on("p", 1, p=1))
        snap = dep.snapshot()
        dep.clear("t")
        assert "t" in snap.statuses  # the snapshot survived the clear

    def test_generation_stamping(self):
        dep = ResourceDependency()
        s1 = dep.set_blocked("t", waiting_on("p", 1, p=1))
        s2 = dep.set_blocked("t", waiting_on("p", 2, p=2))
        assert s2.generation > s1.generation

    def test_is_current_tracks_generations(self):
        dep = ResourceDependency()
        s1 = dep.set_blocked("t", waiting_on("p", 1, p=1))
        assert dep.is_current("t", s1)
        s2 = dep.set_blocked("t", waiting_on("p", 2, p=2))
        assert not dep.is_current("t", s1)
        assert dep.is_current("t", s2)
        dep.clear("t")
        assert not dep.is_current("t", s2)

    def test_concurrent_updates_do_not_corrupt(self):
        dep = ResourceDependency()

        def hammer(tid: str):
            for i in range(200):
                dep.set_blocked(tid, waiting_on("p", i + 1, p=i + 1))
                dep.clear(tid)

        threads = [
            threading.Thread(target=hammer, args=(f"t{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert dep.blocked_count() == 0


class TestSnapshot:
    def test_waits_map_matches_definition(self):
        snap = example_41().snapshot()
        assert snap.waits["t1"] == frozenset({Event("pc", 1)})
        assert snap.waits["t4"] == frozenset({Event("pb", 1)})

    def test_awaited_events(self):
        snap = example_41().snapshot()
        assert snap.awaited_events == frozenset({Event("pc", 1), Event("pb", 1)})

    def test_impeders_match_example(self):
        snap = example_41().snapshot()
        assert snap.impeders_of(Event("pc", 1)) == frozenset({"t4"})
        assert snap.impeders_of(Event("pb", 1)) == frozenset({"t1", "t2", "t3"})

    def test_impeding_map_covers_all_awaited(self):
        snap = example_41().snapshot()
        imap = snap.impeding_map()
        assert set(imap) == snap.awaited_events

    def test_phaser_index(self):
        snap = example_41().snapshot()
        index = snap.phaser_index()
        assert sorted(index) == ["pb", "pc"]
        assert ("t4", 0) in index["pc"]
        assert ("t1", 1) in index["pc"]

    def test_len_iter_empty(self):
        snap = example_41().snapshot()
        assert len(snap) == 4
        assert set(snap) == {"t1", "t2", "t3", "t4"}
        assert not snap.is_empty()
        assert ResourceDependency().snapshot().is_empty()
