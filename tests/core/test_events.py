"""Unit tests for synchronisation events and blocked statuses."""

from __future__ import annotations

import pytest

from repro.core.events import BlockedStatus, Event, waiting_on


class TestEvent:
    def test_ordering_is_per_phaser_then_phase(self):
        assert Event("p", 1) < Event("p", 2)
        assert sorted([Event("p", 3), Event("p", 1)]) == [
            Event("p", 1),
            Event("p", 3),
        ]

    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError):
            Event("p", -1)

    def test_equality_and_hash(self):
        assert Event("p", 1) == Event("p", 1)
        assert hash(Event("p", 1)) == hash(Event("p", 1))
        assert Event("p", 1) != Event("q", 1)

    def test_repr_is_compact(self):
        assert repr(Event("pc", 3)) == "pc@3"


class TestBlockedStatus:
    def test_requires_at_least_one_wait(self):
        with pytest.raises(ValueError):
            BlockedStatus(waits=frozenset())

    def test_waits_coerced_to_frozenset(self):
        s = BlockedStatus(waits={Event("p", 1)})
        assert isinstance(s.waits, frozenset)

    def test_registered_is_immutable(self):
        s = waiting_on("p", 1, p=1, q=0)
        with pytest.raises(TypeError):
            s.registered["q"] = 5  # type: ignore[index]
        with pytest.raises(TypeError):
            s.registered.clear()  # type: ignore[attr-defined]

    def test_impedes_strictly_below_phase(self):
        s = waiting_on("p", 1, p=1, q=0)
        assert s.impedes(Event("q", 1))
        assert s.impedes(Event("q", 5))
        assert not s.impedes(Event("q", 0))
        assert not s.impedes(Event("p", 1))  # own phase reached
        assert s.impedes(Event("p", 2))  # but not future phases

    def test_impedes_only_registered_phasers(self):
        s = waiting_on("p", 1, p=1)
        assert not s.impedes(Event("other", 99))

    def test_impeded_events_filters(self):
        s = waiting_on("p", 2, p=2, q=0)
        awaited = [Event("q", 1), Event("p", 1), Event("p", 3), Event("x", 1)]
        assert s.impeded_events(awaited) == frozenset(
            {Event("q", 1), Event("p", 3)}
        )

    def test_status_is_hashable(self):
        s1 = waiting_on("p", 1, p=1)
        s2 = waiting_on("p", 1, p=1)
        assert len({s1, s2}) == 1
