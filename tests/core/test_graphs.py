"""Graph-construction tests, anchored on the paper's Figure 5."""

from __future__ import annotations

from repro.core.dependency import ResourceDependency
from repro.core.events import BlockedStatus, Event, waiting_on
from repro.core.graphs import (
    DiGraph,
    build_grg,
    build_sg,
    build_wfg,
    sg_from_grg,
    wfg_from_grg,
)


def example_41_snapshot():
    dep = ResourceDependency()
    for i in (1, 2, 3):
        dep.set_blocked(f"t{i}", waiting_on("pc", 1, pc=1, pb=0))
    dep.set_blocked("t4", waiting_on("pb", 1, pc=0, pb=1))
    return dep.snapshot()


R1 = Event("pc", 1)
R2 = Event("pb", 1)


class TestFigure5:
    """The three graphs of Figure 5, edge for edge."""

    def test_wfg_matches_figure_5a(self):
        wfg = build_wfg(example_41_snapshot())
        expected = {
            ("t1", "t4"),
            ("t2", "t4"),
            ("t3", "t4"),
            ("t4", "t1"),
            ("t4", "t2"),
            ("t4", "t3"),
        }
        assert set(wfg.edges()) == expected

    def test_grg_matches_figure_5b(self):
        grg = build_grg(example_41_snapshot())
        expected = {
            ("t1", R1),
            ("t2", R1),
            ("t3", R1),
            ("t4", R2),
            (R1, "t4"),
            (R2, "t1"),
            (R2, "t2"),
            (R2, "t3"),
        }
        assert set(grg.edges()) == expected

    def test_sg_matches_figure_5c(self):
        sg = build_sg(example_41_snapshot())
        assert set(sg.edges()) == {(R1, R2), (R2, R1)}

    def test_contractions_recover_wfg_and_sg(self):
        """Lemmas 4.5/4.6: contracting the GRG gives the WFG / SG."""
        snap = example_41_snapshot()
        grg = build_grg(snap)
        assert set(wfg_from_grg(grg).edges()) == set(build_wfg(snap).edges())
        assert set(sg_from_grg(grg).edges()) == set(build_sg(snap).edges())


class TestBuilders:
    def test_empty_snapshot_gives_empty_graphs(self):
        snap = ResourceDependency().snapshot()
        for build in (build_wfg, build_sg, build_grg):
            g = build(snap)
            assert g.vertex_count == 0
            assert g.edge_count == 0

    def test_blocked_task_with_no_impeders_has_no_out_edges(self):
        dep = ResourceDependency()
        dep.set_blocked("t", waiting_on("p", 1, p=1))
        wfg = build_wfg(dep.snapshot())
        assert wfg.out_degree("t") == 0

    def test_self_impeding_is_impossible(self):
        """A task never impedes its own waited event: after arriving its
        local phase equals the event's phase."""
        dep = ResourceDependency()
        dep.set_blocked("t", waiting_on("p", 2, p=2))
        wfg = build_wfg(dep.snapshot())
        assert not wfg.has_edge("t", "t")

    def test_future_phase_wait_impeded_by_lagging_member(self):
        """HJ-style future-phase waits: a task waiting phase 5 is impeded
        by anyone below 5."""
        dep = ResourceDependency()
        dep.set_blocked("ahead", waiting_on("p", 5, p=5))
        dep.set_blocked("lagging", waiting_on("q", 1, q=1, p=1))
        wfg = build_wfg(dep.snapshot())
        assert wfg.has_edge("ahead", "lagging")
        assert not wfg.has_edge("lagging", "ahead")

    def test_multi_wait_tasks(self):
        """A task waiting on two events contributes edges through both."""
        dep = ResourceDependency()
        dep.set_blocked(
            "joiner",
            BlockedStatus(
                waits=frozenset({Event("f1", 1), Event("f2", 1)}),
                registered={},
            ),
        )
        dep.set_blocked("w1", waiting_on("x", 1, x=1, f1=0))
        dep.set_blocked("w2", waiting_on("x", 1, x=1, f2=0))
        wfg = build_wfg(dep.snapshot())
        assert wfg.has_edge("joiner", "w1")
        assert wfg.has_edge("joiner", "w2")


class TestDiGraph:
    def test_add_edge_creates_vertices(self):
        g = DiGraph()
        g.add_edge(1, 2)
        assert set(g.vertices) == {1, 2}
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_degrees(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        assert g.out_degree("a") == 2
        assert g.in_degree("c") == 2
        assert g.edge_count == 3
        assert g.vertex_count == 3

    def test_subgraph_reachable_from(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("x", "y")  # unreachable island
        sub = g.subgraph_reachable_from("a")
        assert set(sub.vertices) == {"a", "b", "c"}
        assert sub.has_edge("b", "c")
        assert not sub.has_edge("x", "y")

    def test_subgraph_of_missing_source_is_empty(self):
        g = DiGraph()
        assert g.subgraph_reachable_from("nope").vertex_count == 0

    def test_is_subgraph_of(self):
        small = DiGraph()
        small.add_edge(1, 2)
        big = DiGraph()
        big.add_edge(1, 2)
        big.add_edge(2, 3)
        assert small.is_subgraph_of(big)
        assert not big.is_subgraph_of(small)
