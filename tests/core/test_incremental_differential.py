"""Stateful differential tests: IncrementalChecker vs from-scratch.

The delta contract's acceptance property is *pointwise* equivalence:
after every single state change, the incremental checker's answer —
report or no report, plain or sharded — must equal the classic
checker's on the same state.  These tests drive both checkers through

* every trace in the checked-in regression corpus (the real workloads:
  cycle, churn, aio, bounded, knot families plus live recordings), and
* randomised delta sequences (random statuses over small task/phaser
  pools, random withdrawals, re-publications and restores),

comparing canonical reports at every cadence point.
"""

from __future__ import annotations

import pathlib
import random

import pytest

from repro.core.checker import DeadlockChecker
from repro.core.events import BlockedStatus, Event
from repro.core.incremental import IncrementalChecker
from repro.core.selection import GraphModel
from repro.trace.events import RecordKind
from repro.trace.parallel import discover_traces
from repro.trace.replay import replay
from repro.trace.stream import iter_load

CORPUS = pathlib.Path(__file__).parent.parent / "trace" / "corpus"


def corpus_files():
    return discover_traces(CORPUS)


def drive_both(records, model=GraphModel.AUTO, sharded=False):
    """Feed the same delta stream to both checkers; compare after every
    state change.  Returns how many comparisons ran."""
    scratch = DeadlockChecker(model=model)
    incremental = IncrementalChecker(model=model)
    compared = 0
    for rec in records:
        if rec.kind is RecordKind.BLOCK:
            scratch.set_blocked(rec.task, rec.status)
            incremental.set_blocked(rec.task, rec.status)
        elif rec.kind is RecordKind.UNBLOCK:
            scratch.clear(rec.task)
            incremental.clear(rec.task)
        else:
            continue
        if sharded:
            assert incremental.check_sharded() == scratch.check_sharded()
        else:
            assert incremental.check() == scratch.check()
        compared += 1
    return compared


#: Publication kinds (either protocol): these traces exercise the
#: engine-level view derivation instead of the raw checker surface.
PUBLISH_KINDS = (RecordKind.PUBLISH, RecordKind.PUBLISH_DELTA)


class TestCorpusDifferential:
    @pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
    def test_reports_identical_at_every_cadence_point(self, path):
        """Block/unblock traces: drive both checkers record by record.
        Publication traces (bucket or delta protocol) exercise the
        engine-level view derivation instead (their records carry no
        per-task delta to hand a checker directly)."""
        records = list(iter_load(path))
        if any(r.kind in PUBLISH_KINDS for r in records):
            a = replay(records, check_every=1)
            b = replay(records, check_every=1, incremental=True)
            assert a.reports == b.reports
            return
        assert drive_both(records) > 0

    @pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
    def test_sharded_reports_identical(self, path):
        records = list(iter_load(path))
        if any(r.kind in PUBLISH_KINDS for r in records):
            a = replay(records, check_every=1, shard_components=True)
            b = replay(
                records, check_every=1, shard_components=True, incremental=True
            )
            assert a.reports == b.reports
            return
        drive_both(records, sharded=True)

    @pytest.mark.parametrize(
        "model", [GraphModel.WFG, GraphModel.SG], ids=str
    )
    def test_fixed_model_reports_identical(self, model):
        """The incremental oracle is model-independent (Theorem 4.8):
        fixed-WFG and fixed-SG configurations fall back to identical
        reports too."""
        records = list(iter_load(CORPUS / "aio-cycle-N8-dl.jsonl"))
        drive_both(records, model=model)


def random_status(rng, phasers):
    """A random blocked status over a small phaser pool."""
    waits = frozenset(
        Event(rng.choice(phasers), rng.randint(1, 3))
        for _ in range(rng.randint(1, 2))
    )
    registered = {
        p: rng.randint(0, 3)
        for p in rng.sample(phasers, rng.randint(0, len(phasers)))
    }
    return BlockedStatus(waits=waits, registered=registered)


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_delta_sequences(self, seed):
        rng = random.Random(seed)
        tasks = [f"t{i}" for i in range(8)]
        phasers = [f"p{i}" for i in range(4)]
        scratch = DeadlockChecker()
        incremental = IncrementalChecker()
        blocked = set()
        for _ in range(250):
            op = rng.random()
            if op < 0.55 or not blocked:
                task = rng.choice(tasks)
                status = random_status(rng, phasers)
                scratch.set_blocked(task, status)
                incremental.set_blocked(task, status)
                blocked.add(task)
            else:
                task = rng.choice(sorted(blocked))
                scratch.clear(task)
                incremental.clear(task)
                blocked.discard(task)
            assert incremental.check() == scratch.check()
            assert incremental.check_sharded() == scratch.check_sharded()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_avoidance_sequences(self, seed):
        """check_before_block: refusals, restores and accepted publishes
        must leave both checkers in equivalent states throughout."""
        rng = random.Random(1000 + seed)
        tasks = [f"t{i}" for i in range(6)]
        phasers = [f"p{i}" for i in range(3)]
        scratch = DeadlockChecker()
        incremental = IncrementalChecker()
        for _ in range(150):
            if rng.random() < 0.7:
                task = rng.choice(tasks)
                status = random_status(rng, phasers)
                r1, s1 = scratch.check_before_block(task, status)
                r2, s2 = incremental.check_before_block(task, status)
                assert r1 == r2
                assert (s1 is None) == (s2 is None)
            else:
                task = rng.choice(tasks)
                scratch.clear(task)
                incremental.clear(task)
            assert incremental.check() == scratch.check()

    def test_restore_keeps_states_aligned(self):
        """The avoidance restore path: a withdrawn tentative status must
        put the prior one (and its edges) back."""
        scratch = DeadlockChecker()
        incremental = IncrementalChecker()
        prior = BlockedStatus(
            waits=frozenset({Event("p", 1)}), registered={"p": 1, "q": 0}
        )
        for checker in (scratch, incremental):
            stamped = checker.set_blocked("a", prior)
            checker.set_blocked(
                "a",
                BlockedStatus(waits=frozenset({Event("z", 1)}), registered={}),
            )
            checker.restore("a", stamped)
            checker.set_blocked(
                "b",
                BlockedStatus(
                    waits=frozenset({Event("q", 1)}), registered={"p": 0, "q": 1}
                ),
            )
        assert incremental.check() == scratch.check()
        assert incremental.check() is not None


class TestForeignStoreWrites:
    """Producers that write to the dependency store directly (the PL
    interpreter's re-publish loop, shared-store deployments) must be
    detected and resynchronised — never silently missed."""

    def knot(self):
        return {
            "a": BlockedStatus(
                waits=frozenset({Event("p", 1)}), registered={"p": 1, "q": 0}
            ),
            "b": BlockedStatus(
                waits=frozenset({Event("q", 1)}), registered={"p": 0, "q": 1}
            ),
        }

    def test_direct_dependency_writes_are_resynced(self):
        checker = IncrementalChecker()
        for task, status in self.knot().items():
            checker.dependency.set_blocked(task, status)
        scratch = DeadlockChecker()
        for task, status in self.knot().items():
            scratch.dependency.set_blocked(task, status)
        assert checker.check() == scratch.check()
        assert checker.check() is not None

    def test_clear_all_behind_the_checkers_back(self):
        checker = IncrementalChecker()
        for task, status in self.knot().items():
            checker.set_blocked(task, status)
        assert checker.check() is not None
        checker.dependency.clear_all()
        assert checker.check() is None
        assert checker.wfg_edge_count == 0

    def test_pl_interpreter_accepts_an_incremental_checker(self):
        """The interpreter republishes phi(S) via clear_all + direct
        store writes on every cadence step — the resync must make an
        incremental checker a true drop-in there."""
        from repro.pl.interpreter import Interpreter
        from repro.pl.programs import running_example
        from repro.pl.state import State

        a = Interpreter(seed=7, checker=DeadlockChecker()).run(
            State.initial(running_example(I=3, J=1))
        )
        b = Interpreter(seed=7, checker=IncrementalChecker()).run(
            State.initial(running_example(I=3, J=1))
        )
        assert a.is_deadlocked and b.is_deadlocked
        assert a.reports and b.reports
        assert a.reports[0].cycle == b.reports[0].cycle

    def test_shared_store_between_two_checkers(self):
        from repro.core.dependency import ResourceDependency

        store = ResourceDependency()
        writer = DeadlockChecker(dependency=store)
        reader = IncrementalChecker(dependency=store)
        for task, status in self.knot().items():
            writer.set_blocked(task, status)
        assert reader.check() == writer.check()
        writer.clear("a")
        assert reader.check() is None


class TestTransientPublishConflicts:
    """Cross-site duplication is rejected at check time — like the
    from-scratch merge — so an overlap resolving within one cadence
    window replays identically in both engines."""

    def records(self):
        from repro.trace import events as ev
        from repro.trace.events import status_to_obj
        from repro.core.events import waiting_on

        blob = status_to_obj(waiting_on("p", 1, p=1))
        return [
            ev.publish(0, "A", {"t1": blob}),
            ev.publish(1, "B", {"t1": blob}),
            ev.publish(2, "A", {}),
        ]

    def test_transient_overlap_replays_in_both_engines(self):
        recs = self.records()
        a = replay(recs, check_every=10)
        b = replay(recs, check_every=10, incremental=True)
        assert a.reports == b.reports
        assert a.checks_run == b.checks_run

    def test_persisting_overlap_raises_identically(self):
        recs = self.records()[:2]
        errors = []
        for kwargs in ({}, {"incremental": True}):
            with pytest.raises(ValueError) as exc:
                replay(recs, check_every=1, **kwargs)
            errors.append(str(exc.value))
        assert errors[0] == errors[1]
        assert "several sites" in errors[0]

    def test_survivor_status_wins_after_resolution(self):
        """While conflicted the delta state is last-writer; resolution
        must re-apply the surviving site's status, not keep the loser's."""
        from repro.trace import events as ev
        from repro.trace.events import status_to_obj
        from repro.core.events import waiting_on

        a_blob = status_to_obj(waiting_on("p", 1, p=1, q=0))
        b_blob = status_to_obj(waiting_on("q", 1, p=0, q=1))
        recs = [
            ev.publish(0, "A", {"t1": a_blob, "t2": b_blob}),
            ev.publish(1, "B", {"t2": a_blob}),  # conflicting duplicate
            ev.publish(2, "B", {}),  # B retracts: A's t2 must win again
        ]
        x = replay(recs, check_every=5)
        y = replay(recs, check_every=5, incremental=True)
        assert x.reports == y.reports
        assert x.deadlocked  # A's pair is the crossed knot


class TestIncrementalExtraction:
    """The WFG-model checker extracts reports from the maintained
    partition — no snapshot, no classic rebuild — byte-identically."""

    def knot(self):
        return {
            "a": BlockedStatus(
                waits=frozenset({Event("p", 1)}), registered={"p": 1, "q": 0}
            ),
            "b": BlockedStatus(
                waits=frozenset({Event("q", 1)}), registered={"p": 0, "q": 1}
            ),
        }

    def test_wfg_report_skips_the_classic_build(self, monkeypatch):
        import repro.core.checker as checker_mod

        incremental = IncrementalChecker(model=GraphModel.WFG)
        for task, status in self.knot().items():
            incremental.set_blocked(task, status)
        calls = []
        original = checker_mod.build_graph
        monkeypatch.setattr(
            checker_mod, "build_graph",
            lambda *a, **k: calls.append(1) or original(*a, **k),
        )
        report = incremental.check()
        assert report is not None
        assert calls == []  # extraction came from the partition
        assert incremental.incremental_extractions == 1

    def test_wfg_extraction_is_epoch_cached_across_churn(self):
        incremental = IncrementalChecker(model=GraphModel.WFG)
        for task, status in self.knot().items():
            incremental.set_blocked(task, status)
        first = incremental.check()
        assert first is not None
        done = incremental.incremental_extractions
        for i in range(4):
            # Churn an unrelated component: the knot's extraction must
            # be served from the per-component cache.
            incremental.set_blocked(
                f"x{i}",
                BlockedStatus(
                    waits=frozenset({Event(f"r{i}", 1)}), registered={}
                ),
            )
            assert incremental.check() == first
        assert incremental.incremental_extractions == done

    def test_wfg_revalidate_matches_classic(self):
        scratch = DeadlockChecker(model=GraphModel.WFG)
        incremental = IncrementalChecker(model=GraphModel.WFG)
        for checker in (scratch, incremental):
            for task, status in self.knot().items():
                checker.set_blocked(task, status)
        assert incremental.check(revalidate=True) == scratch.check(revalidate=True)

    @pytest.mark.parametrize("seed", range(6))
    def test_wfg_randomized_pointwise_identity(self, seed):
        """The extraction path under random churn: pointwise equality
        with the classic WFG checker after every delta."""
        rng = random.Random(7000 + seed)
        tasks = [f"t{i}" for i in range(8)]
        phasers = [f"p{i}" for i in range(4)]
        scratch = DeadlockChecker(model=GraphModel.WFG)
        incremental = IncrementalChecker(model=GraphModel.WFG)
        blocked = set()
        for _ in range(200):
            if rng.random() < 0.6 or not blocked:
                task = rng.choice(tasks)
                status = random_status(rng, phasers)
                scratch.set_blocked(task, status)
                incremental.set_blocked(task, status)
                blocked.add(task)
            else:
                task = rng.choice(sorted(blocked))
                scratch.clear(task)
                incremental.clear(task)
                blocked.discard(task)
            assert incremental.check() == scratch.check()
