"""Detection-monitor tests: periodic checking, callbacks, lifecycle."""

from __future__ import annotations

import time

from repro.core.checker import DeadlockChecker
from repro.core.events import waiting_on
from repro.core.monitor import DetectionMonitor


def load_deadlock(checker: DeadlockChecker) -> None:
    checker.set_blocked("a", waiting_on("p", 1, p=1, q=0))
    checker.set_blocked("b", waiting_on("q", 1, q=1, p=0))


class TestPolling:
    def test_poll_once_reports(self):
        checker = DeadlockChecker()
        load_deadlock(checker)
        monitor = DetectionMonitor(checker)
        report = monitor.poll_once()
        assert report is not None
        assert monitor.reports == [report]

    def test_poll_once_clean(self):
        monitor = DetectionMonitor(DeadlockChecker())
        assert monitor.poll_once() is None
        assert monitor.reports == []

    def test_callback_invoked(self):
        checker = DeadlockChecker()
        load_deadlock(checker)
        seen = []
        DetectionMonitor(checker, on_deadlock=seen.append).poll_once()
        assert len(seen) == 1


class TestBackgroundThread:
    def test_detects_within_interval(self):
        checker = DeadlockChecker()
        seen = []
        with DetectionMonitor(
            checker, interval_s=0.01, on_deadlock=seen.append, once=True
        ):
            load_deadlock(checker)
            deadline = time.time() + 5.0
            while not seen and time.time() < deadline:
                time.sleep(0.005)
        assert len(seen) == 1

    def test_start_is_idempotent(self):
        monitor = DetectionMonitor(DeadlockChecker(), interval_s=0.01)
        assert monitor.start() is monitor.start()
        monitor.stop()

    def test_stop_without_start(self):
        DetectionMonitor(DeadlockChecker()).stop()

    def test_once_stops_after_first_report(self):
        checker = DeadlockChecker()
        load_deadlock(checker)
        monitor = DetectionMonitor(checker, interval_s=0.01, once=True)
        monitor.start()
        deadline = time.time() + 5.0
        while not monitor.reports and time.time() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)  # give it a few more intervals
        assert len(monitor.reports) == 1  # no repeated reports
        monitor.stop()
