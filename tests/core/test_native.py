"""The opt-in compiled core: selection policy and semantic parity.

Two groups of pins:

* **Selection policy** — ``REPRO_NATIVE`` governs which structure
  :func:`~repro.core.scc.make_dynamic_scc` builds: off-values force
  pure Python, require-values demand the kernel (and raise when it was
  never built), and ``auto``/unset uses whatever is importable.  The
  fallback shim must work on machines with no C toolchain, so the
  policy tests run everywhere; only the parity tests skip when the
  extension is absent.

* **Semantic parity** — the kernel-backed structure must be
  *observationally* identical to :class:`~repro.core.scc.DynamicSCC`:
  same verdicts, same canonical witness cycles (each equal to
  ``find_cycle`` over the materialised graph), same mutation epochs,
  same edge/vertex counts, under randomised mutation sequences with
  batch windows interleaved.  (Internal label numbers, ``pk_visits``
  and the exact *member sets* of components may differ: which edges
  are order-violating — and therefore when a component gets a scoped
  re-partition — depends on topological-order values that the pure
  structure itself varies across hash seeds.  Canonical extraction
  makes all of that unobservable in reports; component sets are
  instead pinned against ground-truth SCCs.)
"""

from __future__ import annotations

import random

import pytest

from repro.core import _native
from repro.core.cycles import find_cycle, strongly_connected_components
from repro.core.scc import DynamicSCC, make_dynamic_scc


class TestSelectionPolicy:
    @pytest.mark.parametrize("flag", ["0", "off", "no", "false", " OFF "])
    def test_off_values_force_pure_python(self, monkeypatch, flag):
        monkeypatch.setenv(_native.NATIVE_ENV, flag)
        assert not _native.native_enabled()
        assert _native.native_scc_class() is None
        assert type(make_dynamic_scc()) is DynamicSCC

    def test_auto_never_raises(self, monkeypatch):
        """Unset (auto) must work with or without the extension."""
        monkeypatch.delenv(_native.NATIVE_ENV, raising=False)
        structure = make_dynamic_scc()
        if _native.native_available():
            assert type(structure) is _native.NativeDynamicSCC
        else:
            assert type(structure) is DynamicSCC

    @pytest.mark.parametrize("flag", ["1", "on", "yes", "true", "require"])
    def test_require_raises_without_extension(self, monkeypatch, flag):
        monkeypatch.setenv(_native.NATIVE_ENV, flag)
        monkeypatch.setattr(_native, "_kernel_mod", None)
        with pytest.raises(RuntimeError, match="build_ext"):
            _native.native_enabled()

    def test_require_selects_kernel_when_built(self, monkeypatch):
        if not _native.native_available():
            pytest.skip("compiled kernel not built")
        monkeypatch.setenv(_native.NATIVE_ENV, "require")
        assert _native.native_scc_class() is _native.NativeDynamicSCC
        assert type(make_dynamic_scc()) is _native.NativeDynamicSCC

    def test_fallback_import_without_extension(self, monkeypatch):
        """The pure-Python leg of CI: with the kernel absent, auto mode
        must quietly build the pure structure (never raise)."""
        monkeypatch.delenv(_native.NATIVE_ENV, raising=False)
        monkeypatch.setattr(_native, "_kernel_mod", None)
        assert not _native.native_available()
        assert _native.native_scc_class() is None
        assert type(make_dynamic_scc()) is DynamicSCC


needs_kernel = pytest.mark.skipif(
    not _native.native_available(),
    reason="compiled kernel not built (run `python setup.py build_ext "
    "--inplace`)",
)


def components_key(structure):
    """Hashable, order-independent view of the cyclic components."""
    return sorted(
        tuple(sorted(map(str, comp)))
        for comp in structure.cyclic_components()
    )


def true_cyclic_sccs(graph):
    """Ground truth: the actual cyclic SCCs of a materialised graph."""
    return [
        frozenset(scc)
        for scc in strongly_connected_components(graph)
        if len(scc) > 1 or graph.has_edge(scc[0], scc[0])
    ]


def assert_components_sound(structure):
    """Pin ``cyclic_components`` against ground truth.

    A maintained component is an over-approximation (it may span
    vertices that were weakly connected when unioned), so member sets
    are not compared between implementations — what must hold for
    either one: every true cyclic SCC is wholly inside exactly one
    reported component, and every reported component really contains a
    cycle.
    """
    graph = structure.to_digraph()
    truth = true_cyclic_sccs(graph)
    reported = structure.cyclic_components()
    for scc in truth:
        assert sum(scc <= comp for comp in reported) == 1
    covered = frozenset().union(*truth) if truth else frozenset()
    for comp in reported:
        assert comp & covered, f"component {sorted(comp)} has no cycle"


def random_mutation(rng, vertices, edges, pure, native):
    """Apply one random mutation to both structures, mirroring the
    book-keeping sets used to pick plausible removals."""
    roll = rng.random()
    if roll < 0.55 or not edges:
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        pure.add_edge(u, v)
        native.add_edge(u, v)
        edges.add((u, v))
    elif roll < 0.8:
        u, v = rng.choice(sorted(edges))
        pure.remove_edge(u, v)
        native.remove_edge(u, v)
        edges.discard((u, v))
    elif roll < 0.9:
        v = rng.choice(vertices)
        pure.add_vertex(v)
        native.add_vertex(v)
    else:
        v = rng.choice(vertices)
        pure.remove_vertex(v)
        native.remove_vertex(v)
        for e in [e for e in edges if v in e]:
            edges.discard(e)


@needs_kernel
class TestKernelParity:
    def assert_equivalent(self, pure, native, ground_truth=False):
        assert native.has_cycle() == pure.has_cycle()
        assert native.edge_count == pure.edge_count
        assert native.vertex_count == pure.vertex_count
        assert native.mutation_epoch == pure.mutation_epoch
        assert native.extract_cycle() == pure.extract_cycle()
        if ground_truth:
            assert native.extract_cycle() == find_cycle(native.to_digraph())
            assert_components_sound(pure)
            assert_components_sound(native)
        else:
            # Outside batch windows both sides run the same maintenance
            # at the same points, so even the (over-approximate) member
            # sets coincide.
            assert components_key(native) == components_key(pure)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_mutations(self, seed):
        rng = random.Random(seed)
        vertices = [f"v{i}" for i in range(10)]
        pure, native = DynamicSCC(), _native.NativeDynamicSCC()
        edges = set()
        for _ in range(220):
            random_mutation(rng, vertices, edges, pure, native)
            self.assert_equivalent(pure, native)
            if rng.random() < 0.1:
                for v in rng.sample(vertices, 3):
                    assert (v in native) == (v in pure)
                    if v in pure:
                        assert native.component_of(v) == pure.component_of(v)
                        assert native.epoch_of(v) == pure.epoch_of(v)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_mutations_with_batches(self, seed):
        """Interleave batch windows: inside a batch only unions are
        eager, so equivalence is asserted at the window edges.  Batch
        deferral makes dirty-marking order-dependent, so component
        member sets are pinned against ground truth here, not against
        each other (see the module docstring)."""
        rng = random.Random(1000 + seed)
        vertices = [f"v{i}" for i in range(8)]
        pure, native = DynamicSCC(), _native.NativeDynamicSCC()
        edges = set()
        for _ in range(40):
            pure.begin_batch()
            native.begin_batch()
            for _ in range(rng.randint(1, 8)):
                random_mutation(rng, vertices, edges, pure, native)
            pure.end_batch()
            native.end_batch()
            self.assert_equivalent(pure, native, ground_truth=True)

    def test_scoped_queries_match(self):
        pure, native = DynamicSCC(), _native.NativeDynamicSCC()
        for structure in (pure, native):
            for u, v in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"),
                         ("d", "e"), ("e", "d"), ("x", "x")]:
                structure.add_edge(u, v)
        scope = {"a", "b", "c", "d"}
        assert native.edges_within(scope) == pure.edges_within(scope)
        assert (native.extract_cycle_within(frozenset(scope))
                == pure.extract_cycle_within(frozenset(scope)))
        assert native.extract_cycle() == pure.extract_cycle()
        native.check_valid()

    def test_unknown_vertex_raises(self):
        native = _native.NativeDynamicSCC()
        native.add_edge("a", "b")
        with pytest.raises(KeyError):
            native.component_of("zz")
        with pytest.raises(KeyError):
            native.epoch_of("zz")
        assert not native.has_edge("a", "zz")
        assert "zz" not in native

    def test_end_batch_without_begin_raises(self):
        native = _native.NativeDynamicSCC()
        with pytest.raises(RuntimeError):
            native.end_batch()

    def test_reblocked_vertex_reuses_interned_id(self):
        """Unblock/re-block churn must not grow the intern table."""
        native = _native.NativeDynamicSCC()
        for _ in range(100):
            native.add_edge("a", "b")
            native.remove_vertex("a")
            native.remove_vertex("b")
        assert len(native._ids) == 2
        assert native.vertex_count == 0
