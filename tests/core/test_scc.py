"""DynamicSCC: incremental cycle maintenance under insert/delete churn."""

from __future__ import annotations

import random

import pytest

from repro.core.scc import DynamicSCC


def edges_of(pairs) -> DynamicSCC:
    """Build a DynamicSCC from an edge iterable."""
    scc = DynamicSCC()
    for u, v in pairs:
        scc.add_edge(u, v)
    return scc


class TestBasics:
    def test_empty_has_no_cycle(self):
        assert not DynamicSCC().has_cycle()

    def test_path_is_acyclic(self):
        scc = edges_of([(1, 2), (2, 3), (3, 4)])
        assert not scc.has_cycle()
        assert scc.edge_count == 3
        assert scc.vertex_count == 4

    def test_closing_edge_creates_cycle(self):
        scc = edges_of([(1, 2), (2, 3)])
        assert not scc.has_cycle()
        scc.add_edge(3, 1)
        assert scc.has_cycle()

    def test_self_loop_is_a_cycle(self):
        scc = DynamicSCC()
        scc.add_edge("t", "t")
        assert scc.has_cycle()

    def test_duplicate_edges_and_vertices_are_idempotent(self):
        scc = DynamicSCC()
        scc.add_edge(1, 2)
        scc.add_edge(1, 2)
        scc.add_vertex(1)
        assert scc.edge_count == 1

    def test_remove_edge_breaks_the_cycle(self):
        scc = edges_of([(1, 2), (2, 1)])
        assert scc.has_cycle()
        scc.remove_edge(2, 1)
        assert not scc.has_cycle()

    def test_remove_vertex_breaks_the_cycle(self):
        scc = edges_of([(1, 2), (2, 3), (3, 1)])
        assert scc.has_cycle()
        scc.remove_vertex(2)
        assert not scc.has_cycle()
        assert scc.edge_count == 1  # only 3 -> 1 survives

    def test_one_cycle_among_many_components(self):
        scc = edges_of([(1, 2), (3, 4), (5, 6), (6, 5), (7, 8)])
        assert scc.has_cycle()
        components = scc.cyclic_components()
        assert components == [frozenset({5, 6})]

    def test_vertex_readded_after_removal_is_fresh(self):
        """The churn pattern: a task unblocks and blocks again.  Stale
        component bookkeeping must not leak across incarnations."""
        scc = edges_of([(1, 2), (2, 3)])
        scc.remove_vertex(1)
        scc.add_edge(3, 1)  # re-adds 1 with a fresh identity
        assert not scc.has_cycle()
        scc.add_edge(1, 2)
        assert scc.has_cycle()
        scc.remove_vertex(2)
        assert not scc.has_cycle()

    def test_cycle_restored_after_break(self):
        scc = edges_of([(1, 2), (2, 1)])
        scc.remove_edge(1, 2)
        assert not scc.has_cycle()
        scc.add_edge(1, 2)
        assert scc.has_cycle()


class TestEpochs:
    def test_epoch_advances_on_component_mutation(self):
        scc = DynamicSCC()
        scc.add_edge("a", "b")
        before = scc.epoch_of("a")
        scc.add_edge("b", "c")
        assert scc.epoch_of("a") > before

    def test_untouched_component_epoch_is_stable(self):
        scc = DynamicSCC()
        scc.add_edge("a", "b")
        scc.add_edge("x", "y")
        before = scc.epoch_of("a")
        scc.add_edge("y", "z")  # other component only
        assert scc.epoch_of("a") == before

    def test_mutation_epoch_is_global(self):
        scc = DynamicSCC()
        e0 = scc.mutation_epoch
        scc.add_edge("a", "b")
        assert scc.mutation_epoch > e0

    def test_component_of_tracks_unions(self):
        scc = DynamicSCC()
        scc.add_edge("a", "b")
        scc.add_edge("c", "d")
        assert scc.component_of("a") == frozenset({"a", "b"})
        scc.add_edge("b", "c")
        assert scc.component_of("a") == frozenset({"a", "b", "c", "d"})


class TestScopedRecompute:
    def test_deletion_in_cyclic_component_recomputes_scoped(self):
        """Breaking one of two cycles in a component keeps the other."""
        scc = edges_of([(1, 2), (2, 1), (2, 3), (3, 2)])
        assert scc.has_cycle()
        scc.remove_edge(2, 1)
        assert scc.has_cycle()  # 2 <-> 3 survives
        scc.remove_edge(3, 2)
        assert not scc.has_cycle()

    def test_component_split_after_deletion(self):
        """A deletion can split a weak component; verdicts must follow
        the true partition after the lazy recompute."""
        scc = edges_of([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        assert scc.has_cycle()
        scc.remove_edge(2, 3)  # splits {1,2} from {3,4}
        assert scc.has_cycle()  # both halves still cyclic
        scc.remove_edge(2, 1)
        assert scc.has_cycle()  # {3,4} still cyclic
        scc.remove_edge(4, 3)
        assert not scc.has_cycle()


class TestRandomizedDifferential:
    """The oracle property: under random insert/delete churn the
    maintained verdict always equals a from-scratch Tarjan run."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_churn_matches_tarjan(self, seed):
        rng = random.Random(seed)
        scc = DynamicSCC()
        vertices = list(range(12))
        edges = set()
        for step in range(300):
            op = rng.random()
            if op < 0.45 or not edges:
                u, v = rng.choice(vertices), rng.choice(vertices)
                scc.add_edge(u, v)
                edges.add((u, v))
            elif op < 0.8:
                u, v = rng.choice(sorted(edges))
                scc.remove_edge(u, v)
                edges.discard((u, v))
            else:
                v = rng.choice(vertices)
                if v in scc:
                    scc.remove_vertex(v)
                    edges = {(a, b) for a, b in edges if a != v and b != v}
            if step % 7 == 0:
                scc.check_valid()
        scc.check_valid()

    @pytest.mark.parametrize("seed", range(4))
    def test_grow_then_shrink(self, seed):
        """Monotone growth to a dense graph, then full teardown —
        exercising the dirty/recompute path on every deletion."""
        rng = random.Random(100 + seed)
        scc = DynamicSCC()
        edges = [
            (rng.randrange(10), rng.randrange(10)) for _ in range(60)
        ]
        for u, v in edges:
            scc.add_edge(u, v)
        scc.check_valid()
        rng.shuffle(edges)
        for u, v in edges:
            scc.remove_edge(u, v)
            scc.check_valid()
        assert not scc.has_cycle()
        assert scc.edge_count == 0


class TestExtractCycle:
    """extract_cycle: canonical witness from the maintained partition,
    byte-equal to the from-scratch find_cycle, epoch-cached per
    component."""

    def test_acyclic_returns_none(self):
        scc = edges_of([("a", "b"), ("b", "c")])
        assert scc.extract_cycle() is None

    def test_matches_from_scratch_extraction(self):
        from repro.core.cycles import find_cycle

        scc = edges_of(
            [("b", "c"), ("c", "b"), ("x", "y"), ("m", "a"), ("a", "m")]
        )
        assert scc.extract_cycle() == find_cycle(scc.to_digraph())

    def test_self_loop(self):
        from repro.core.cycles import find_cycle

        scc = edges_of([("s", "s"), ("a", "b")])
        assert scc.extract_cycle() == find_cycle(scc.to_digraph()) == ["s", "s"]

    def test_global_minimal_vertex_chosen_across_components(self):
        """Two disjoint cyclic components: the one holding the globally
        minimal vertex wins, like find_cycle."""
        scc = edges_of([("z1", "z2"), ("z2", "z1"), ("a1", "a2"), ("a2", "a1")])
        cycle = scc.extract_cycle()
        assert cycle[0] == "a1"

    def test_extraction_is_epoch_cached(self):
        """Re-extracting a stable deadlock while *other* components
        mutate computes nothing new — the per-component epoch cache."""
        scc = edges_of([("a", "b"), ("b", "a")])
        first = scc.extract_cycle()
        done = scc.extractions
        for i in range(5):
            scc.add_edge(f"x{i}", f"x{i + 1}")  # churn elsewhere
            assert scc.extract_cycle() == first
        assert scc.extractions == done

    def test_mutating_the_cyclic_component_recomputes(self):
        scc = edges_of([("a", "b"), ("b", "a")])
        scc.extract_cycle()
        done = scc.extractions
        scc.add_edge("c", "a")
        scc.extract_cycle()
        assert scc.extractions == done + 1

    def test_cache_pruned_when_cycle_breaks(self):
        scc = edges_of([("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")])
        scc.extract_cycle()
        scc.remove_edge("b", "a")
        cycle = scc.extract_cycle()
        assert cycle[0] == "c"

    @pytest.mark.parametrize("seed", range(6))
    def test_random_churn_matches_find_cycle(self, seed):
        from repro.core.cycles import find_cycle

        rng = random.Random(3000 + seed)
        scc = DynamicSCC()
        vertices = [f"v{i}" for i in range(10)]
        edges = set()
        for step in range(200):
            if rng.random() < 0.6 or not edges:
                u, v = rng.choice(vertices), rng.choice(vertices)
                scc.add_edge(u, v)
                edges.add((u, v))
            else:
                u, v = rng.choice(sorted(edges))
                scc.remove_edge(u, v)
                edges.discard((u, v))
            if step % 5 == 0:
                assert scc.extract_cycle() == find_cycle(scc.to_digraph())
        assert scc.extract_cycle() == find_cycle(scc.to_digraph())
