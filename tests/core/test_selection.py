"""Graph-model selection tests: fixed modes and the adaptive threshold."""

from __future__ import annotations

from repro.core.cycles import has_cycle
from repro.core.dependency import ResourceDependency
from repro.core.events import BlockedStatus, Event, waiting_on
from repro.core.selection import GraphModel, build_graph


def spmd_snapshot(n_tasks: int, skew: bool = True):
    """Many tasks, one barrier (SG-friendly)."""
    dep = ResourceDependency()
    for i in range(n_tasks):
        phase = 2 if (skew and i % 2) else 1
        dep.set_blocked(f"t{i}", waiting_on("bar", phase, bar=phase))
    return dep.snapshot()


def forkjoin_snapshot(n_tasks: int):
    """One event per task (WFG-friendly futures ring)."""
    dep = ResourceDependency()
    for i in range(n_tasks):
        dep.set_blocked(
            f"t{i}",
            BlockedStatus(
                waits=frozenset({Event(f"f{(i + 1) % n_tasks}", 1)}),
                registered={f"f{i}": 0},
            ),
        )
    return dep.snapshot()


class TestFixedModes:
    def test_fixed_wfg(self):
        out = build_graph(spmd_snapshot(8), GraphModel.WFG)
        assert out.model_used is GraphModel.WFG
        assert out.edge_count == out.graph.edge_count

    def test_fixed_sg(self):
        out = build_graph(spmd_snapshot(8), GraphModel.SG)
        assert out.model_used is GraphModel.SG


class TestAdaptive:
    def test_spmd_stays_on_sg(self):
        """Many tasks, one barrier: SG has ~1 edge, far under 2x tasks."""
        out = build_graph(spmd_snapshot(16), GraphModel.AUTO)
        assert out.model_used is GraphModel.SG
        assert not out.sg_aborted
        assert out.edge_count <= 2

    def test_forkjoin_ring_may_stay_sg_when_sparse(self):
        """The futures ring has exactly one SG edge per task — right at
        the threshold boundary, it must not abort (threshold is strict
        'more than')."""
        out = build_graph(forkjoin_snapshot(8), GraphModel.AUTO)
        assert out.model_used is GraphModel.SG

    def test_dense_fan_aborts_to_wfg(self):
        """A task registered with many lagging phasers emits an SG edge
        per (impeded, waited) pair; crossing 2x tasks aborts to WFG."""
        dep = ResourceDependency()
        # One waiter per phaser, and one straggler registered with all of
        # them at phase 0 — the straggler alone emits k^2-ish SG edges.
        k = 8
        for i in range(k):
            dep.set_blocked(f"w{i}", waiting_on(f"p{i}", 1, **{f"p{i}": 1}))
        dep.set_blocked(
            "straggler",
            BlockedStatus(
                waits=frozenset({Event("p0", 1)}),
                registered={f"p{i}": 0 for i in range(1, k)},
            ),
        )
        out = build_graph(dep.snapshot(), GraphModel.AUTO, threshold_factor=0.5)
        assert out.model_used is GraphModel.WFG
        assert out.sg_aborted

    def test_threshold_factor_controls_abort(self):
        snap = forkjoin_snapshot(8)
        loose = build_graph(snap, GraphModel.AUTO, threshold_factor=10.0)
        tight = build_graph(snap, GraphModel.AUTO, threshold_factor=0.1)
        assert loose.model_used is GraphModel.SG
        assert tight.model_used is GraphModel.WFG

    def test_cycle_answer_identical_across_modes(self):
        for snap in (spmd_snapshot(12), forkjoin_snapshot(12)):
            answers = {
                mode: has_cycle(build_graph(snap, mode).graph)
                for mode in (GraphModel.WFG, GraphModel.SG, GraphModel.AUTO)
            }
            assert len(set(answers.values())) == 1, answers

    def test_empty_snapshot(self):
        out = build_graph(ResourceDependency().snapshot(), GraphModel.AUTO)
        assert out.edge_count == 0


class TestShardAwareSelection:
    """Per-shard model choice (ROADMAP: shard-aware adaptive selection)."""

    def test_small_shards_skip_the_sg_attempt(self):
        from repro.core.selection import SMALL_SHARD_TASKS, select_shard_model

        assert (
            select_shard_model(SMALL_SHARD_TASKS, GraphModel.AUTO)
            is GraphModel.WFG
        )
        assert (
            select_shard_model(SMALL_SHARD_TASKS + 1, GraphModel.AUTO)
            is GraphModel.AUTO
        )

    def test_fixed_models_are_never_overridden(self):
        from repro.core.selection import select_shard_model

        assert select_shard_model(1, GraphModel.SG) is GraphModel.SG
        assert select_shard_model(1, GraphModel.WFG) is GraphModel.WFG

    def test_fragmented_snapshot_picks_wfg_small_sg_giant(self):
        """The satellite's acceptance shape: a snapshot fragmenting into
        several tiny knots plus one SPMD giant — sharded checking uses
        the WFG on every small component and the SG on the giant one."""
        from repro.core.checker import DeadlockChecker

        dep = ResourceDependency()
        # Three 2-task crossed knots on private phaser pairs.
        for k in range(3):
            p, q = f"p{k}", f"q{k}"
            dep.set_blocked(
                f"k{k}a",
                BlockedStatus(
                    waits=frozenset({Event(p, 1)}), registered={p: 1, q: 0}
                ),
            )
            dep.set_blocked(
                f"k{k}b",
                BlockedStatus(
                    waits=frozenset({Event(q, 1)}), registered={p: 0, q: 1}
                ),
            )
        # One 50-task SPMD component on a shared barrier: deadlock-free
        # phase skew (each task awaits its own phase), tiny SG.
        for i in range(50):
            phase = 2 if i % 2 else 1
            dep.set_blocked(f"s{i}", waiting_on("bar", phase, bar=phase))
        checker = DeadlockChecker(model=GraphModel.AUTO)
        reports = checker.check_sharded(snapshot=dep.snapshot())
        histogram = checker.stats.model_histogram()
        assert histogram.get(GraphModel.WFG) == 3  # the three knots
        assert histogram.get(GraphModel.SG) == 1  # the giant
        assert len(reports) == 3
        assert all(r.model_used is GraphModel.WFG for r in reports)
