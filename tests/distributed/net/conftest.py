"""Shared fixtures: a live checker service on an ephemeral port."""

from __future__ import annotations

import pytest

from repro.distributed.net import CheckerService, RemoteStore


@pytest.fixture()
def service():
    """A started service, periodic checks off (tests drive ``check``)."""
    with CheckerService(port=0, check_interval_s=0) as svc:
        yield svc


@pytest.fixture()
def make_client(service):
    """Build tenant-scoped clients against the live service; each is
    closed at teardown."""
    clients = []

    def build(tenant: str = "default", **kwargs) -> RemoteStore:
        kwargs.setdefault("timeout_s", 5.0)
        kwargs.setdefault("connect_timeout_s", 5.0)
        kwargs.setdefault("backoff_s", 0.01)
        client = RemoteStore(
            service.host, service.port, tenant=tenant, **kwargs
        )
        clients.append(client)
        return client

    yield build
    for client in clients:
        client.close()
