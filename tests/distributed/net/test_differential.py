"""The acceptance differential: wire-path reports are byte-identical
to in-process reports.

Three comparisons, strongest last:

1. a client-side ``DistributedChecker`` over a ``RemoteStore`` versus
   the same checker over an ``InMemoryStore``, fed identical
   publications — the drop-in claim at the report level;
2. the *service-side* check (which adds provenance) versus in-process,
   compared through ``without_provenance()`` — the enrichment is
   additive, never report-shape-changing;
3. a scenario sweep (cross-site rings of growing width, plus
   no-deadlock controls) pinning ``report_to_obj`` canonical JSON bytes
   equal across the two paths.
"""

from __future__ import annotations

import json

from repro.core.events import waiting_on
from repro.distributed.delta import DeltaPublisher, encode_bucket
from repro.distributed.detector import DistributedChecker
from repro.distributed.store import InMemoryStore
from repro.trace.events import report_to_obj


def canonical(report) -> str:
    return json.dumps(report_to_obj(report), sort_keys=True)


def publish(store, site, statuses, stream_seed=None):
    """Publish with a *deterministic* publisher identity so both paths
    produce literally identical wire objects."""
    publisher = DeltaPublisher(site, stream=stream_seed)
    obj = publisher.prepare(encode_bucket(statuses))
    if obj is not None:
        store.append_delta(site, obj)
        publisher.commit(obj)
    return publisher


def ring_sites(n: int):
    """``n`` sites, one task each, task i waiting on task i+1 mod n —
    a deadlock cycle of width n spread over n sites."""
    sites = {}
    for i in range(n):
        me, nxt = f"e{i}", f"e{(i + 1) % n}"
        sites[f"s{i}"] = {
            f"t{i}": waiting_on(nxt, 1, **{nxt: 1, me: 0}),
        }
    return sites


def chain_sites(n: int):
    """No deadlock: a wait chain with a free tail."""
    sites = {}
    for i in range(n):
        nxt = f"e{i + 1}"
        sites[f"s{i}"] = {f"t{i}": waiting_on(nxt, 1, **{nxt: 1})}
    return sites


class TestClientSideDifferential:
    def test_reports_byte_identical_across_transport(self, make_client):
        remote = make_client("diff-client")
        local = InMemoryStore()
        scenario = ring_sites(2)
        for i, (site, statuses) in enumerate(sorted(scenario.items())):
            seed = f"stream{i:04d}"
            publish(remote, site, statuses, stream_seed=seed)
            publish(local, site, statuses, stream_seed=seed)
        wire_report = DistributedChecker(remote).check_global()
        local_report = DistributedChecker(local).check_global()
        assert wire_report is not None and local_report is not None
        assert canonical(wire_report) == canonical(local_report)

    def test_scenario_sweep(self, make_client):
        for width in (2, 3, 5):
            remote = make_client(f"diff-ring{width}")
            local = InMemoryStore()
            for i, (site, statuses) in enumerate(
                sorted(ring_sites(width).items())
            ):
                seed = f"ring{width}-{i:04d}"
                publish(remote, site, statuses, stream_seed=seed)
                publish(local, site, statuses, stream_seed=seed)
            wire_report = DistributedChecker(remote).check_global()
            local_report = DistributedChecker(local).check_global()
            assert wire_report is not None
            assert canonical(wire_report) == canonical(local_report)
        for width in (2, 4):
            remote = make_client(f"diff-chain{width}")
            local = InMemoryStore()
            for i, (site, statuses) in enumerate(
                sorted(chain_sites(width).items())
            ):
                seed = f"chain{width}-{i:04d}"
                publish(remote, site, statuses, stream_seed=seed)
                publish(local, site, statuses, stream_seed=seed)
            # No-deadlock controls: both paths stay silent.
            assert DistributedChecker(remote).check_global() is None
            assert DistributedChecker(local).check_global() is None


class TestServiceSideDifferential:
    def test_service_report_matches_in_process_modulo_provenance(
        self, make_client
    ):
        remote = make_client("diff-service")
        local = InMemoryStore()
        for i, (site, statuses) in enumerate(sorted(ring_sites(3).items())):
            seed = f"svc-{i:04d}"
            publish(remote, site, statuses, stream_seed=seed)
            publish(local, site, statuses, stream_seed=seed)
        service_report = remote.check()  # checked *on the service*
        local_report = DistributedChecker(local).check_global()
        assert service_report is not None
        # The service enriches with wire provenance; strip it and the
        # report is byte-identical to the in-process path.
        assert service_report.provenance
        assert canonical(service_report.without_provenance()) == \
            canonical(local_report)

    def test_report_objects_roundtrip_the_codec(self, make_client):
        """What ``reports`` returns client-side decodes to the same
        canonical bytes the service holds."""
        remote = make_client("diff-codec")
        for i, (site, statuses) in enumerate(sorted(ring_sites(2).items())):
            publish(remote, site, statuses, stream_seed=f"codec-{i:04d}")
        first = remote.check()
        listed = remote.reports()
        assert len(listed) == 1
        assert canonical(listed[0]) == canonical(first)
