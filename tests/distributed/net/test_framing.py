"""The wire format: length-prefixed JSON frames, both transport halves.

The blocking half is exercised over a real ``socketpair``; the asyncio
half over a fed ``StreamReader`` — same bytes, same failure taxonomy:
clean EOF between frames is ``None``, EOF *inside* a frame (header or
payload) is a :class:`FrameError`, and a hostile length prefix fails
fast instead of allocating.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.distributed.net import framing
from repro.distributed.net.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_payload,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestEncode:
    def test_roundtrip(self):
        obj = {"op": "append_delta", "site": "s0", "n": [1, 2, 3]}
        wire = encode_frame(obj)
        (length,) = struct.unpack(">I", wire[:4])
        assert length == len(wire) - 4
        assert decode_payload(wire[4:]) == obj

    def test_compact_json(self):
        assert b" " not in encode_frame({"a": 1, "b": [2, 3]})

    def test_oversized_object_refused_on_send(self, monkeypatch):
        monkeypatch.setattr(framing, "MAX_FRAME_BYTES", 16)
        with pytest.raises(FrameError):
            encode_frame({"blob": "x" * 64})

    def test_non_json_payload_refused(self):
        with pytest.raises(FrameError):
            decode_payload(b"\xff\xfenot json")


class TestBlockingSocket:
    def test_roundtrip_and_pipelining(self, pair):
        a, b = pair
        send_frame(a, {"seq": 1})
        send_frame(a, {"seq": 2})
        assert recv_frame(b) == {"seq": 1}
        assert recv_frame(b) == {"seq": 2}

    def test_clean_eof_between_frames_is_none(self, pair):
        a, b = pair
        send_frame(a, {"seq": 1})
        a.close()
        assert recv_frame(b) == {"seq": 1}
        assert recv_frame(b) is None

    def test_eof_mid_header_is_truncation(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # half a header, then gone
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)

    def test_eof_mid_payload_is_truncation(self, pair):
        a, b = pair
        wire = encode_frame({"big": "x" * 100})
        a.sendall(wire[:-10])
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)

    def test_eof_between_header_and_payload_is_truncation(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 32))  # announces 32 bytes, sends none
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)

    def test_hostile_length_prefix_fails_fast(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError):
            recv_frame(b)

    def test_garbage_payload_raises(self, pair):
        a, b = pair
        payload = b"definitely not json"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FrameError):
            recv_frame(b)


def drive(coro):
    return asyncio.run(coro)


class TestAsyncioStream:
    def _reader(self, *chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        if eof:
            reader.feed_eof()
        return reader

    def test_roundtrip(self):
        async def go():
            reader = self._reader(encode_frame({"seq": 1}) + encode_frame({"seq": 2}))
            return await read_frame(reader), await read_frame(reader)

        assert drive(go()) == ({"seq": 1}, {"seq": 2})

    def test_clean_eof_is_none(self):
        async def go():
            return await read_frame(self._reader())

        assert drive(go()) is None

    def test_eof_mid_header_raises(self):
        async def go():
            return await read_frame(self._reader(b"\x00\x00"))

        with pytest.raises(FrameError):
            drive(go())

    def test_eof_mid_payload_raises(self):
        async def go():
            wire = encode_frame({"big": "x" * 100})
            return await read_frame(self._reader(wire[:-5]))

        with pytest.raises(FrameError):
            drive(go())

    def test_hostile_length_prefix_raises(self):
        async def go():
            return await read_frame(
                self._reader(struct.pack(">I", MAX_FRAME_BYTES + 1))
            )

        with pytest.raises(FrameError):
            drive(go())

    def test_write_frame_matches_blocking_encoding(self):
        class SpyWriter:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

        writer = SpyWriter()
        write_frame(writer, {"seq": 7})
        assert b"".join(writer.chunks) == encode_frame({"seq": 7})
