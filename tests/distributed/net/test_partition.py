"""Network-partition fault scenarios, driven end-to-end over sockets.

The in-process :class:`ReplicatedStore` suite (``test_store.py``) pins
the healing semantics; this suite re-runs the same fault scripts with
the replicated facade *behind the checker service* (via
``store_factory``) and every append/read arriving through a
:class:`RemoteStore` over a real TCP connection — proving the replica
heal paths, outage signalling, and publisher-gap recovery survive the
transport hop with the same observable outcomes.
"""

from __future__ import annotations

import pytest

from repro.core.events import waiting_on
from repro.distributed.delta import DeltaSequenceError, make_snapshot
from repro.distributed.net import CheckerService, RemoteStore
from repro.distributed.store import (
    InMemoryStore,
    ReplicatedStore,
    StoreUnavailableError,
    encode_statuses,
)


def blob(*tasks):
    return encode_statuses(
        {t: waiting_on(f"e{t}", 1, **{f"e{t}": 1}) for t in tasks}
    )


def delta(seq, set=None, restore=None, clear=None, stream="S"):
    return {
        "kind": "delta", "stream": stream, "seq": seq,
        "set": set or {}, "restore": restore or {}, "clear": list(clear or []),
    }


@pytest.fixture()
def cluster():
    """A service whose sole tenant is backed by a 2-replica store, plus
    a connected client: (client, replicas)."""
    replicas = [InMemoryStore(f"r{i}") for i in range(2)]
    with CheckerService(
        port=0, check_interval_s=0,
        store_factory=lambda name: ReplicatedStore(replicas),
    ) as svc:
        with RemoteStore(
            svc.host, svc.port, tenant="cluster", backoff_s=0.01
        ) as client:
            yield client, replicas


class TestReplicatedOverTheWire:
    def test_write_through_reaches_every_replica(self, cluster):
        client, replicas = cluster
        client.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        client.append_delta("s0", delta(2, set=blob("b")))
        for replica in replicas:
            stream, seq, state = replica.get_state("s0")
            assert seq == 2 and set(state) == {"a", "b"}

    def test_partial_outage_tolerated(self, cluster):
        client, replicas = cluster
        replicas[0].set_available(False)
        client.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        assert set(client.get_state("s0")[2]) == {"a"}

    def test_total_outage_raises_typed_without_transport_retries(self, cluster):
        client, replicas = cluster
        for replica in replicas:
            replica.set_available(False)
        with pytest.raises(StoreUnavailableError):
            client.append_delta("s0", make_snapshot(1, {}, "S"))
        with pytest.raises(StoreUnavailableError):
            client.delta_sites()
        # Semantic outage, not transport trouble: no retry burn.
        assert client.transport_failures == 0

    def test_recovered_replica_heals_via_checkpoint(self, cluster):
        """A replica dies mid-stream, misses deltas, recovers; the next
        write-through — arriving over the wire — detects its gap and
        heals it with a checkpoint from a healthy replica."""
        client, replicas = cluster
        client.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        replicas[0].set_available(False)
        client.append_delta("s0", delta(2, set=blob("b")))  # r0 misses it
        replicas[0].set_available(True)
        assert replicas[0].get_state("s0")[1] == 1  # stale...
        client.append_delta("s0", delta(3, set=blob("c")))
        seq0, state0 = replicas[0].get_state("s0")[1:]
        seq1, state1 = replicas[1].get_state("s0")[1:]
        assert seq0 == seq1 == 3  # ...healed by the checkpoint
        assert state0 == state1

    def test_all_live_replicas_stale_signals_remote_publisher(self, cluster):
        """Failover onto recovered-stale replicas only: no healthy copy
        exists, so the *remote* publisher is told to checkpoint — the
        DeltaSequenceError crosses the wire — and the checkpoint lands."""
        client, replicas = cluster
        client.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        for replica in replicas:
            replica.set_available(False)
        with pytest.raises(StoreUnavailableError):
            client.append_delta("s0", delta(2, set=blob("b")))
        for replica in replicas:
            replica.set_available(True)
        with pytest.raises(DeltaSequenceError):
            client.append_delta("s0", delta(3, set=blob("c")))
        client.append_delta("s0", make_snapshot(3, blob("c"), "S"))
        assert client.get_state("s0")[1] == 3

    def test_read_repair_heals_idle_sites_through_remote_reads(self, cluster):
        """An idle site never appends again; a checker's ordinary
        *remote* read must still probe replica tails and heal the
        recovered-stale one."""
        client, replicas = cluster
        client.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        replicas[1].set_available(False)
        client.append_delta("s0", delta(2, clear=["a"]))  # r1 misses the clear
        replicas[1].set_available(True)
        assert replicas[1].get_state("s0")[1] == 1  # stale: still holds a
        client.get_deltas("s0", 2)  # a remote checker's ordinary read
        assert replicas[1].get_state("s0")[1] == 2
        assert replicas[1].get_state("s0")[2] == {}  # the clear arrived

    def test_detection_after_partition_heals(self, cluster):
        """End-to-end: a cross-site deadlock published through an
        outage window is still detected service-side once the replica
        set heals, and the report reaches the client decoded."""
        client, replicas = cluster
        knot_a = encode_statuses({"a": waiting_on("p", 1, p=1, q=0)})
        knot_b = encode_statuses({"b": waiting_on("q", 1, q=1, p=0)})
        client.append_delta("s0", make_snapshot(1, knot_a, "SA"))
        replicas[0].set_available(False)
        client.append_delta("s1", make_snapshot(1, knot_b, "SB"))
        replicas[0].set_available(True)
        report = client.check()
        assert report is not None
        assert set(report.tasks) == {"a", "b"}
        assert replicas[0].get_state("s1")[1] == 1  # healed on the way
