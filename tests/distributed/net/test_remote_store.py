"""``RemoteStore`` as a drop-in store: surface parity, error fidelity,
transport robustness — the tentpole's client-side contract.

Everything here runs against a real :class:`CheckerService` socket
(ephemeral port, fixtures in ``conftest.py``): the point is that the
delta protocol's semantics — tail validation, sequence-gap recovery,
outage tolerance — survive the hop because the *exception types* do.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.events import waiting_on
from repro.distributed.delta import (
    DeltaPublisher,
    DeltaSequenceError,
    encode_bucket,
    make_snapshot,
)
from repro.distributed.detector import DistributedChecker
from repro.distributed.net import CheckerService, RemoteProtocolError, RemoteStore
from repro.distributed.store import InMemoryStore, StoreUnavailableError


def publish(store, site, statuses, publisher=None):
    """One delta-protocol publication round for ``site`` (same helper
    the in-process detector tests use — deliberately: the differential
    suite publishes through both paths with identical code)."""
    publisher = publisher or DeltaPublisher(site)
    obj = publisher.prepare(encode_bucket(statuses))
    if obj is not None:
        store.append_delta(site, obj)
        publisher.commit(obj)
    return publisher


def crossed_knot():
    return (
        {"a": waiting_on("p", 1, p=1, q=0)},
        {"b": waiting_on("q", 1, q=1, p=0)},
    )


def blob(*tasks):
    from repro.distributed.store import encode_statuses

    return encode_statuses(
        {t: waiting_on(f"e{t}", 1, **{f"e{t}": 1}) for t in tasks}
    )


def delta(seq, set=None, restore=None, clear=None, stream="S"):
    return {
        "kind": "delta", "stream": stream, "seq": seq,
        "set": set or {}, "restore": restore or {}, "clear": list(clear or []),
    }


def sans_stream(value):
    """Drop publisher stream tokens (fresh randomness per publisher)
    so two independently-published histories can be compared."""
    if isinstance(value, dict):
        return {k: sans_stream(v) for k, v in value.items() if k != "stream"}
    if isinstance(value, (list, tuple)):
        return [sans_stream(v) for v in value]
    return value


class TestStoreSurfaceParity:
    """Every read through the wire answers exactly what an
    ``InMemoryStore`` fed the same appends answers (modulo the random
    per-publisher stream token)."""

    def test_five_method_surface(self, make_client):
        remote = make_client("parity")
        local = InMemoryStore()
        a, b = crossed_knot()
        for store in (remote, local):
            publish(store, "s0", a)
            publish(store, "s1", b)
        assert remote.delta_sites() == local.delta_sites()
        for site in ("s0", "s1"):
            assert sans_stream(remote.get_state(site)[1:]) == \
                sans_stream(local.get_state(site)[1:])
            assert sans_stream(remote.get_deltas(site, 0)) == \
                sans_stream(local.get_deltas(site, 0))
            assert remote.delta_tail(site)[1] == local.delta_tail(site)[1]
        remote.delete("s0")
        local.delete("s0")
        assert remote.delta_sites() == local.delta_sites() == ["s1"]
        assert remote.delta_tail("s0") is None

    def test_client_side_checker_over_the_wire(self, make_client):
        """A ``DistributedChecker`` fed by a ``RemoteStore`` — the
        drop-in claim, verbatim: cross-site cycle found, O(change)
        resync, no code change anywhere."""
        remote = make_client("checker")
        a, b = crossed_knot()
        publish(remote, "s0", a)
        publish(remote, "s1", b)
        checker = DistributedChecker(remote)
        report = checker.check_global()
        assert report is not None and set(report.tasks) == {"a", "b"}

    def test_site_over_the_wire(self, make_client):
        """A full ``Site`` (both background loops) running against the
        service instead of an in-process store."""
        from repro.distributed.site import Site

        remote = make_client("site")
        with Site(
            "s0", remote, check_interval_s=0.02, publish_interval_s=0.01,
            cancel_on_detect=False,
        ) as site:
            dep = site.runtime.checker.dependency
            dep.set_blocked("a", waiting_on("p", 1, p=1, q=0))
            dep.set_blocked("b", waiting_on("q", 1, q=1, p=0))
            deadline = time.time() + 10.0
            while not site.reports and time.time() < deadline:
                time.sleep(0.01)
        assert site.reports and set(site.reports[0].tasks) == {"a", "b"}
        assert not site.loop_errors


class TestErrorFidelity:
    def test_sequence_gap_crosses_the_wire_typed(self, make_client):
        remote = make_client("gaps")
        remote.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        with pytest.raises(DeltaSequenceError):
            remote.append_delta("s0", delta(5, set=blob("b")))
        # ... and the protocol's own recovery (a forced checkpoint)
        # heals it, exactly as in-process:
        remote.append_delta("s0", make_snapshot(2, blob("a", "b"), "S"))
        assert remote.get_state("s0")[1] == 2

    def test_publisher_gap_recovery_through_the_wire(self, make_client):
        remote = make_client("pubgap")
        a, _ = crossed_knot()
        pub = publish(remote, "s0", a)
        remote.delete("s0")  # the service forgot the stream
        bucket = encode_bucket(
            {"a": waiting_on("p", 1, p=1, q=0), "c": waiting_on("r", 1, r=1)}
        )
        obj = pub.prepare(bucket)
        with pytest.raises(DeltaSequenceError):
            remote.append_delta("s0", obj)
        checkpoint = pub.prepare_checkpoint(bucket)
        remote.append_delta("s0", checkpoint)
        pub.commit(checkpoint)
        assert set(remote.get_state("s0")[2]) == {"a", "c"}

    def test_store_unavailable_crosses_typed_without_burning_retries(self):
        """A *server-side* outage is a semantic answer, not transport
        trouble: it must re-raise as ``StoreUnavailableError`` without
        consuming a single transport retry."""
        backing = InMemoryStore("injected")
        with CheckerService(
            port=0, check_interval_s=0, store_factory=lambda name: backing
        ) as svc:
            with RemoteStore(svc.host, svc.port, tenant="outage") as remote:
                backing.set_available(False)
                with pytest.raises(StoreUnavailableError):
                    remote.append_delta("s0", make_snapshot(1, blob("a"), "S"))
                assert remote.transport_failures == 0
                backing.set_available(True)
                remote.append_delta("s0", make_snapshot(1, blob("a"), "S"))

    def test_malformed_delta_rejected_as_value_error(self, make_client):
        remote = make_client("malformed")
        with pytest.raises(ValueError):
            remote.append_delta("s0", {"kind": "delta"})  # no stream/seq/ops

    def test_unknown_op_is_a_protocol_error(self, make_client):
        remote = make_client("unknown")
        with pytest.raises(RemoteProtocolError):
            remote._request("frobnicate")


class TestTransportRobustness:
    def test_unreachable_service_exhausts_retries(self):
        # Bind-then-close: a port with nothing listening on it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = RemoteStore(
            "127.0.0.1", port, retries=2, backoff_s=0.001,
            connect_timeout_s=0.5,
        )
        with pytest.raises(StoreUnavailableError):
            remote.ping()
        assert remote.transport_failures == 2

    def test_broken_connection_retried_on_a_fresh_one(self, make_client):
        remote = make_client("reconnect")
        assert remote.ping()["server"] == "repro-checker"
        # Sever the established connection under the client's feet; the
        # next request must fail transport-side, retry on a fresh
        # connection, and succeed.
        remote._sock.close()
        assert remote.ping()["server"] == "repro-checker"
        assert remote.transport_failures >= 1

    def test_zero_retries_fail_immediately(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = RemoteStore(
            "127.0.0.1", port, retries=0, connect_timeout_s=0.5
        )
        with pytest.raises(StoreUnavailableError):
            remote.ping()
        assert remote.transport_failures == 0


class TestTenancy:
    def test_tenants_are_disjoint_namespaces(self, make_client):
        acme = make_client("acme")
        umbrella = make_client("umbrella")
        a, b = crossed_knot()
        publish(acme, "s0", a)
        publish(umbrella, "s1", b)
        assert acme.delta_sites() == ["s0"]
        assert umbrella.delta_sites() == ["s1"]
        # Neither tenant's view holds a cycle on its own.
        assert acme.check() is None
        assert umbrella.check() is None

    def test_same_tenant_shared_across_clients(self, make_client):
        one = make_client("shared")
        two = make_client("shared")
        a, b = crossed_knot()
        publish(one, "s0", a)
        publish(two, "s1", b)
        report = one.check()
        assert report is not None and set(report.tasks) == {"a", "b"}
