"""The checker service: core dispatch, tenancy, periodic detection,
service-side provenance, obs-endpoint integration, and lifecycle.

The transport-free :class:`CheckerServiceCore` is unit-tested directly
(requests in, responses out); the socket-level behaviours ride the
fixtures from ``conftest.py``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.events import waiting_on
from repro.distributed.delta import DeltaPublisher, encode_bucket, make_snapshot
from repro.distributed.net import CheckerService, RemoteStore
from repro.distributed.net.service import CheckerServiceCore
from repro.distributed.store import encode_statuses
from repro.obs.registry import MetricsRegistry


def publish(store, site, statuses, publisher=None):
    publisher = publisher or DeltaPublisher(site)
    obj = publisher.prepare(encode_bucket(statuses))
    if obj is not None:
        store.append_delta(site, obj)
        publisher.commit(obj)
    return publisher


def crossed_knot():
    return (
        {"a": waiting_on("p", 1, p=1, q=0)},
        {"b": waiting_on("q", 1, q=1, p=0)},
    )


def fetch(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class TestCoreDispatch:
    def test_non_object_request_refused(self):
        core = CheckerServiceCore()
        response = core.handle(["not", "an", "object"])
        assert response["ok"] is False and response["error"] == "protocol"

    def test_unknown_op_refused(self):
        core = CheckerServiceCore()
        response = core.handle({"op": "frobnicate"})
        assert response["ok"] is False and response["error"] == "protocol"

    def test_missing_argument_is_a_value_error(self):
        core = CheckerServiceCore()
        response = core.handle({"op": "get_state"})  # no "site"
        assert response["ok"] is False and response["error"] == "value"

    def test_ping_lists_tenants(self):
        core = CheckerServiceCore()
        core.handle({"op": "append_delta", "tenant": "acme", "site": "s0",
                     "obj": make_snapshot(1, {}, "S")})
        response = core.handle({"op": "ping"})
        assert response["ok"] and response["value"]["tenants"] == ["acme"]

    def test_request_and_error_counters(self):
        registry = MetricsRegistry()
        core = CheckerServiceCore(metrics=registry)
        core.handle({"op": "ping"})
        core.handle({"op": "get_state"})  # missing "site" -> value error
        core.handle({"op": "get_state", "site": "ghost"})  # no stream
        assert core._m_requests.value(op="ping") == 1
        assert core._m_errors.value(error="value") == 1
        assert core._m_errors.value(error="sequence") == 1

    def test_check_finds_cross_site_cycle_with_provenance(self):
        core = CheckerServiceCore()
        a, b = crossed_knot()
        tenant = core.tenant("default")
        publish(tenant, "s0", a)
        publish(tenant, "s1", b)
        response = core.handle({"op": "check"})
        assert response["ok"]
        obj = response["value"]
        assert set(obj["tasks"]) == {"a", "b"}
        # Service-side provenance: every cycle edge carries the live
        # wire deltas (site, stream, seq) that produced its endpoints.
        provenance = obj.get("provenance")
        assert provenance
        for edge in provenance:
            for end in ("source_origin", "target_origin"):
                origin = edge[end]
                assert origin["kind"] == "publish_delta"
                assert origin["site"] in {"s0", "s1"}
                assert origin["seq"] >= 1 and origin.get("stream")
        sites = {e["source_origin"]["site"] for e in provenance}
        assert sites == {"s0", "s1"}

    def test_reports_deduplicate_per_cycle(self):
        core = CheckerServiceCore()
        tenant = core.tenant("default")
        a, b = crossed_knot()
        publish(tenant, "s0", a)
        publish(tenant, "s1", b)
        assert core.handle({"op": "check"})["value"] is not None
        assert core.handle({"op": "check"})["value"] is not None  # re-answered
        reports = core.handle({"op": "reports"})["value"]
        assert len(reports) == 1  # ... but logged once

    def test_health_aggregate_and_per_tenant(self):
        core = CheckerServiceCore()
        a, b = crossed_knot()
        calm = core.tenant("calm")
        publish(calm, "s0", {"t": waiting_on("p", 1, p=1)})
        stuck = core.tenant("stuck")
        publish(stuck, "s0", a)
        publish(stuck, "s1", b)
        stuck.check()
        doc = core.health_doc()
        assert doc["status"] == "deadlock"
        assert doc["mode"] == "checker-service"
        assert doc["tenant_count"] == 2
        assert doc["deadlocked_tenants"] == ["stuck"]
        assert doc["tenants"]["calm"]["status"] == "ok"
        one = core.health_doc("stuck")
        assert one["status"] == "deadlock"
        assert one["sites"] == ["s0", "s1"]
        assert one["report_count"] == 1
        with pytest.raises(KeyError):
            core.health_doc("nobody")

    def test_store_factory_backs_named_tenants(self):
        from repro.distributed.store import InMemoryStore

        made = {}

        def factory(name):
            made[name] = InMemoryStore(name=f"custom:{name}")
            return made[name]

        core = CheckerServiceCore(store_factory=factory)
        core.tenant("acme")
        assert core.tenant("acme").store is made["acme"]


class TestPeriodicChecks:
    def test_service_side_detection_without_client_polling(self):
        registry = MetricsRegistry()
        with CheckerService(
            port=0, check_interval_s=0.02, metrics=registry
        ) as svc:
            with RemoteStore(svc.host, svc.port, tenant="auto") as remote:
                a, b = crossed_knot()
                publish(remote, "s0", a)
                publish(remote, "s1", b)
                deadline = time.time() + 10.0
                while time.time() < deadline:
                    if remote.health()["status"] == "deadlock":
                        break
                    time.sleep(0.01)
                doc = remote.health()
                assert doc["status"] == "deadlock"
                reports = remote.reports()
                assert len(reports) == 1
                assert set(reports[0].tasks) == {"a", "b"}
        assert registry.counter(
            "repro_net_check_rounds_total",
            "Periodic service-side detection rounds, across tenants.",
            volatile=True,
        ).total() >= 1

    def test_one_sick_tenant_does_not_stall_the_others(self):
        from repro.distributed.store import InMemoryStore

        stores = {}

        def factory(name):
            stores[name] = InMemoryStore(name=name)
            return stores[name]

        with CheckerService(
            port=0, check_interval_s=0.01, store_factory=factory
        ) as svc:
            with RemoteStore(svc.host, svc.port, tenant="sick") as sick, \
                 RemoteStore(svc.host, svc.port, tenant="fine") as fine:
                sick.ping()
                publish(sick, "s0", {"t": waiting_on("p", 1, p=1)})
                stores["sick"].set_available(False)  # periodic checks now fail
                a, b = crossed_knot()
                publish(fine, "s0", a)
                publish(fine, "s1", b)
                deadline = time.time() + 10.0
                while time.time() < deadline:
                    if fine.health()["status"] == "deadlock":
                        break
                    time.sleep(0.01)
                assert fine.health()["status"] == "deadlock"


class TestObsIntegration:
    @pytest.fixture()
    def endpoint(self):
        from repro.obs.server import MetricsHTTPServer

        registry = MetricsRegistry()
        svc = CheckerService(port=0, check_interval_s=0, metrics=registry)
        svc.start()
        a, b = crossed_knot()
        stuck = svc.core.tenant("stuck")
        publish(stuck, "s0", a)
        publish(stuck, "s1", b)
        stuck.check()
        calm = svc.core.tenant("calm")
        publish(calm, "s0", {"t": waiting_on("p", 1, p=1)})
        with MetricsHTTPServer(registry, port=0, service=svc) as http:
            yield http
        assert svc.stop()

    def test_aggregate_healthz_503_names_the_deadlocked_tenant(self, endpoint):
        status, body = fetch(endpoint.url + "/healthz")
        assert status == 503
        doc = json.loads(body)
        assert doc["mode"] == "checker-service"
        assert doc["deadlocked_tenants"] == ["stuck"]
        assert doc["tenants"]["stuck"]["reports"][0]["tasks"] == ["a", "b"]

    def test_per_tenant_healthz_slices(self, endpoint):
        status, body = fetch(endpoint.url + "/healthz?tenant=calm")
        assert status == 200
        assert json.loads(body)["tenant"] == "calm"
        status, body = fetch(endpoint.url + "/healthz?tenant=stuck")
        assert status == 503
        assert json.loads(body)["cycles_found"] >= 1

    def test_unknown_tenant_404s(self, endpoint):
        status, _ = fetch(endpoint.url + "/healthz?tenant=nobody")
        assert status == 404

    def test_metrics_carry_service_series(self, endpoint):
        from repro.obs.export import parse_prometheus

        status, body = fetch(endpoint.url + "/metrics")
        assert status == 200
        families = parse_prometheus(body.decode("utf-8"))
        # The service's own planes registered through the shared
        # registry: connection accounting and the tenant stores.
        assert "repro_net_connections_total" in families
        assert "repro_store_appends_total" in families

    def test_spans_route_via_service_tracer(self):
        from repro.obs.server import MetricsHTTPServer
        from repro.obs.tracing import Tracer, validate_chrome_trace

        registry = MetricsRegistry()
        tracer = Tracer()
        with CheckerService(
            port=0, check_interval_s=0, metrics=registry, tracer=tracer
        ) as svc:
            with RemoteStore(svc.host, svc.port, tenant="traced") as remote:
                remote.append_delta(
                    "s0",
                    make_snapshot(
                        1,
                        encode_statuses({"t": waiting_on("p", 1, p=1)}),
                        "S",
                    ),
                )
                remote.check()
            with MetricsHTTPServer(registry, port=0, service=svc) as http:
                status, body = fetch(http.url + "/spans")
                assert status == 200
                validate_chrome_trace(json.loads(body))


class TestLifecycle:
    def test_ephemeral_port_assigned_on_start(self, service):
        assert service.port != 0
        assert service.address.endswith(str(service.port))

    def test_stop_is_clean_and_idempotent(self):
        svc = CheckerService(port=0, check_interval_s=0).start()
        assert svc.stop() is True
        assert svc.stop() is True  # second stop: no-op, still clean

    def test_stop_with_an_open_connection_is_clean(self):
        svc = CheckerService(port=0, check_interval_s=0).start()
        remote = RemoteStore(svc.host, svc.port)
        assert remote.ping()["server"] == "repro-checker"
        try:
            assert svc.stop() is True  # open client must not wedge the loop
        finally:
            remote.close()

    def test_bind_conflict_surfaces_on_start(self):
        with CheckerService(port=0, check_interval_s=0) as first:
            second = CheckerService(port=first.port, check_interval_s=0)
            with pytest.raises(RuntimeError):
                second.start()

    def test_start_twice_is_a_noop(self, service):
        assert service.start() is service
