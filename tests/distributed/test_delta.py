"""Delta wire protocol unit tests: derivation, application, recovery.

The shared module (`repro.distributed.delta`) is the single source of
both the live Site/store derivation and the replay engines' offline
one, so these tests pin its semantics directly: diff classification,
sequence contiguity, checkpoint behaviour, cross-site ownership, and
the bucket-protocol equivalence that keeps distributed reports
byte-identical across the two protocols.
"""

from __future__ import annotations

import pytest

from repro.core.checker import DeadlockChecker
from repro.core.events import waiting_on
from repro.core.incremental import IncrementalChecker
from repro.distributed.delta import (
    DeltaMergeState,
    DeltaPublisher,
    DeltaSequenceError,
    apply_delta_obj,
    diff_buckets,
    encode_bucket,
    make_snapshot,
    merge_buckets,
)
from repro.distributed.detector import merge_payloads
from repro.distributed.store import encode_statuses


def bucket(**statuses):
    return encode_bucket(statuses)


class TestDiffBuckets:
    def test_classifies_set_restore_clear(self):
        old = bucket(a=waiting_on("p", 1, p=1), b=waiting_on("q", 1, q=1))
        new = bucket(b=waiting_on("q", 2, q=2), c=waiting_on("r", 1, r=1))
        set_ops, restore_ops, clear_ops = diff_buckets(old, new)
        assert set(set_ops) == {"c"}
        assert set(restore_ops) == {"b"}
        assert clear_ops == ["a"]

    def test_no_change_is_empty(self):
        b = bucket(a=waiting_on("p", 1, p=1))
        assert diff_buckets(b, dict(b)) == ({}, {}, [])


class TestDeltaPublisher:
    def test_first_publication_is_a_snapshot(self):
        pub = DeltaPublisher("s0")
        obj = pub.prepare(bucket(a=waiting_on("p", 1, p=1)))
        assert obj["kind"] == "snapshot"
        assert obj["seq"] == 1
        assert set(obj["set"]) == {"a"}

    def test_subsequent_deltas_carry_only_the_change(self):
        pub = DeltaPublisher("s0")
        b1 = bucket(a=waiting_on("p", 1, p=1))
        obj = pub.prepare(b1)
        pub.commit(obj)
        b2 = dict(b1)
        b2.update(bucket(b=waiting_on("q", 1, q=1)))
        obj = pub.prepare(b2)
        assert obj["kind"] == "delta" and obj["seq"] == 2
        assert set(obj["set"]) == {"b"}
        assert not obj["restore"] and not obj["clear"]

    def test_no_change_publishes_nothing(self):
        pub = DeltaPublisher("s0")
        b1 = bucket(a=waiting_on("p", 1, p=1))
        pub.commit(pub.prepare(b1))
        assert pub.prepare(dict(b1)) is None

    def test_uncommitted_changes_accumulate(self):
        """A store outage between prepare and commit must not lose the
        change: the next round re-derives it (same seq, merged ops)."""
        pub = DeltaPublisher("s0")
        pub.commit(pub.prepare(bucket(a=waiting_on("p", 1, p=1))))
        b2 = bucket(a=waiting_on("p", 1, p=1), b=waiting_on("q", 1, q=1))
        lost = pub.prepare(b2)  # never committed: the append failed
        b3 = dict(b2)
        b3.update(bucket(c=waiting_on("r", 1, r=1)))
        retry = pub.prepare(b3)
        assert retry["seq"] == lost["seq"] == 2
        assert set(retry["set"]) == {"b", "c"}

    def test_checkpoint_cadence(self):
        pub = DeltaPublisher("s0", checkpoint_every=3)
        kinds = []
        for i in range(8):
            b = bucket(**{f"t{i}": waiting_on("p", i + 1, p=i + 1)})
            obj = pub.prepare(b)
            pub.commit(obj)
            kinds.append(obj["kind"])
        # Snapshot first, then every third committed delta.
        assert kinds[0] == "snapshot"
        assert kinds.count("snapshot") >= 2
        assert kinds[1] == "delta"

    def test_forced_checkpoint_advances_seq(self):
        pub = DeltaPublisher("s0")
        pub.commit(pub.prepare(bucket(a=waiting_on("p", 1, p=1))))
        obj = pub.prepare_checkpoint(bucket(a=waiting_on("p", 1, p=1)))
        assert obj["kind"] == "snapshot" and obj["seq"] == 2


class TestApplyDeltaObj:
    def test_materialises_and_validates(self):
        buckets, cursors = {}, {}
        apply_delta_obj(
            buckets, cursors, "s0",
            make_snapshot(1, bucket(a=waiting_on("p", 1, p=1)), "s0"),
        )
        pub = DeltaPublisher("s0", stream="s0")
        pub.commit(pub.prepare(bucket(a=waiting_on("p", 1, p=1))))
        obj = pub.prepare(bucket(b=waiting_on("q", 1, q=1)))
        apply_delta_obj(buckets, cursors, "s0", obj)
        assert set(buckets["s0"]) == {"b"}
        assert cursors["s0"] == ("s0", 2)

    def test_gap_raises(self):
        buckets, cursors = {}, {}
        apply_delta_obj(
            buckets, cursors, "s0",
            make_snapshot(1, bucket(a=waiting_on("p", 1, p=1)), "s0"),
        )
        gap = {
            "v": 1, "stream": "s0", "seq": 3, "kind": "delta",
            "set": {}, "restore": {}, "clear": ["a"],
        }
        with pytest.raises(DeltaSequenceError):
            apply_delta_obj(buckets, cursors, "s0", gap)

    def test_foreign_stream_raises(self):
        """Sequence numbers never compose across publisher
        incarnations: a contiguous-looking seq on another stream is a
        divergence, not a continuation."""
        buckets, cursors = {}, {}
        apply_delta_obj(buckets, cursors, "s0", make_snapshot(1, {}, "old"))
        alien = {
            "v": 1, "stream": "new", "seq": 2, "kind": "delta",
            "set": {}, "restore": {}, "clear": [],
        }
        with pytest.raises(DeltaSequenceError):
            apply_delta_obj(buckets, cursors, "s0", alien)

    def test_snapshot_resets_any_cursor(self):
        buckets, cursors = {}, {"s0": ("old", 41)}
        apply_delta_obj(buckets, cursors, "s0", make_snapshot(1, {}, "new"))
        assert cursors["s0"] == ("new", 1) and buckets["s0"] == {}


class TestMergeBuckets:
    def test_equals_classic_merge(self):
        payloads = {
            "s0": encode_statuses({"t1": waiting_on("p", 1, p=1)}),
            "s1": encode_statuses({"t2": waiting_on("q", 1, q=1)}),
        }
        assert merge_buckets(payloads).statuses == merge_payloads(payloads).statuses

    def test_duplicate_task_error_text_matches_classic(self):
        blob = encode_statuses({"t1": waiting_on("p", 1, p=1)})
        with pytest.raises(ValueError, match="published by several sites"):
            merge_buckets({"s0": blob, "s1": blob})


class TestDeltaMergeState:
    def knot_buckets(self):
        return (
            bucket(a=waiting_on("p", 1, p=1, q=0)),
            bucket(b=waiting_on("q", 1, q=1, p=0)),
        )

    def test_feeds_checker_o_change(self):
        checker = IncrementalChecker()
        state = DeltaMergeState(checker)
        b0, b1 = self.knot_buckets()
        state.apply_obj("s0", make_snapshot(1, b0, "s0"))
        state.apply_obj("s1", make_snapshot(1, b1, "s1"))
        assert checker.check() is not None
        ops = state.ops_applied
        # Re-applying nothing costs nothing.
        assert state.ops_applied == ops

    def test_matches_scratch_checker_on_same_statuses(self):
        incremental = IncrementalChecker()
        state = DeltaMergeState(incremental)
        incremental.snapshot_source = state.merged_snapshot
        b0, b1 = self.knot_buckets()
        state.apply_obj("s0", make_snapshot(1, b0, "s0"))
        state.apply_obj("s1", make_snapshot(1, b1, "s1"))
        scratch = DeadlockChecker()
        report = scratch.check(snapshot=merge_buckets({"s0": b0, "s1": b1}))
        assert incremental.check() == report

    def test_drop_site_clears_its_tasks(self):
        checker = IncrementalChecker()
        state = DeltaMergeState(checker)
        b0, b1 = self.knot_buckets()
        state.apply_obj("s0", make_snapshot(1, b0, "s0"))
        state.apply_obj("s1", make_snapshot(1, b1, "s1"))
        assert checker.check() is not None
        state.drop_site("s1")
        assert checker.check() is None
        assert state.sites() == ["s0"]

    def test_conflict_raises_at_check_time_only(self):
        checker = IncrementalChecker()
        state = DeltaMergeState(checker)
        blob = bucket(t=waiting_on("p", 1, p=1))
        state.apply_obj("s0", make_snapshot(1, blob, "s0"))
        state.apply_obj("s1", make_snapshot(1, blob, "s1"))  # duplicate owner
        with pytest.raises(ValueError, match="several sites"):
            state.raise_on_conflict()
        # The overlap resolves: s1 retracts its copy.
        state.apply_obj(
            "s1",
            {"v": 1, "stream": "s1", "seq": 2, "kind": "delta",
             "set": {}, "restore": {}, "clear": ["t"]},
        )
        state.raise_on_conflict()  # no longer raises
        assert checker.check() is None or True  # view consistent

    def test_reset_site_fast_forwards_cursor(self):
        checker = IncrementalChecker()
        state = DeltaMergeState(checker)
        b0, _ = self.knot_buckets()
        state.reset_site("s0", "ck", 17, b0)
        assert state.cursor("s0") == ("ck", 17)
        assert set(state.buckets["s0"]) == {"a"}


class TestMalformedSnapshots:
    def test_snapshot_with_delta_ops_rejected_everywhere(self):
        """A snapshot carrying restore/clear ops would materialise
        differently across consumers; the shared validation gate
        rejects it before any state can diverge."""
        from repro.distributed.store import InMemoryStore

        bad = {
            "v": 1, "stream": "S", "seq": 1, "kind": "snapshot",
            "set": {}, "restore": bucket(a=waiting_on("p", 1, p=1)),
            "clear": [],
        }
        with pytest.raises(ValueError, match="snapshot"):
            apply_delta_obj({}, {}, "s0", bad)
        with pytest.raises(ValueError, match="snapshot"):
            DeltaMergeState(IncrementalChecker()).apply_obj("s0", bad)
        with pytest.raises(ValueError, match="snapshot"):
            InMemoryStore().append_delta("s0", bad)


class TestAdaptiveCadence:
    """The byte-ratio checkpoint rule layered over the count ceiling."""

    def _grow(self, pub, rounds):
        """Commit ``rounds`` cumulative single-task additions; return
        the committed wire kinds after the initial snapshot."""
        kinds = []
        acc = {}
        for i in range(rounds):
            acc.update(bucket(**{f"t{i}": waiting_on("p", i + 1, p=i + 1)}))
            obj = pub.prepare(dict(acc))
            pub.commit(obj)
            kinds.append(obj["kind"])
        return kinds

    def test_ratio_triggers_snapshot_before_count_ceiling(self):
        # Deltas on a tiny bucket are nearly snapshot-sized, so a low
        # ratio checkpoints long before the count ceiling of 100.
        pub = DeltaPublisher(
            "s0", checkpoint_every=100, adaptive=True, checkpoint_ratio=1.0
        )
        kinds = self._grow(pub, 10)
        assert kinds[0] == "snapshot"
        assert "snapshot" in kinds[1:], "ratio rule never fired"

    def test_fixed_cadence_when_adaptive_off(self):
        pub = DeltaPublisher(
            "s0", checkpoint_every=100, adaptive=False, checkpoint_ratio=1.0
        )
        kinds = self._grow(pub, 10)
        assert kinds[0] == "snapshot"
        assert kinds[1:] == ["delta"] * 9

    def test_delta_bytes_reset_on_snapshot(self):
        """A committed delta grows the accumulator; a committed
        snapshot zeroes it (the ratio restarts from the new base)."""
        pub = DeltaPublisher("s0", checkpoint_every=100, adaptive=False)
        pub.commit(pub.prepare(bucket(a=waiting_on("p", 1, p=1))))
        pub.commit(
            pub.prepare(
                bucket(a=waiting_on("p", 1, p=1), b=waiting_on("q", 1, q=1))
            )
        )
        assert pub._delta_bytes > 0
        pub.commit(
            pub.prepare_checkpoint(
                bucket(a=waiting_on("p", 1, p=1), b=waiting_on("q", 1, q=1))
            )
        )
        assert pub._delta_bytes == 0

    def test_count_ceiling_still_applies_when_adaptive(self):
        # A huge ratio disables the byte rule; the ceiling still fires.
        pub = DeltaPublisher(
            "s0", checkpoint_every=3, adaptive=True, checkpoint_ratio=1e9
        )
        kinds = self._grow(pub, 8)
        assert kinds.count("snapshot") >= 2


class TestTraceContext:
    """carry_trace stamps deterministic causal context on the wire."""

    def test_delta_carries_deterministic_span(self):
        from repro.distributed.delta import delta_trace_context

        pub = DeltaPublisher(
            "s0", stream="tok", adaptive=False, carry_trace=True
        )
        snap = pub.prepare(bucket(a=waiting_on("p", 1, p=1)))
        assert snap["trace"] == delta_trace_context("s0", "tok", 1)
        pub.commit(snap)
        obj = pub.prepare(
            bucket(a=waiting_on("p", 1, p=1), b=waiting_on("q", 1, q=1))
        )
        assert obj["kind"] == "delta"
        assert obj["trace"] == delta_trace_context("s0", "tok", 2)

    def test_trace_context_matches_span_id_derivation(self):
        from repro.distributed.delta import delta_trace_context
        from repro.obs.tracing import span_id

        ctx = delta_trace_context("s0", "tok", 7)
        assert ctx == {"span": span_id("delta", "s0", "tok", 7)}

    def test_no_trace_field_by_default(self):
        pub = DeltaPublisher("s0", stream="tok", adaptive=False)
        snap = pub.prepare(bucket(a=waiting_on("p", 1, p=1)))
        assert "trace" not in snap
        pub.commit(snap)
        obj = pub.prepare(
            bucket(a=waiting_on("p", 1, p=1), b=waiting_on("q", 1, q=1))
        )
        assert "trace" not in obj

    def test_forced_checkpoint_carries_trace(self):
        from repro.distributed.delta import delta_trace_context

        pub = DeltaPublisher(
            "s0", stream="tok", adaptive=False, carry_trace=True
        )
        pub.commit(pub.prepare(bucket(a=waiting_on("p", 1, p=1))))
        obj = pub.prepare_checkpoint(bucket(a=waiting_on("p", 1, p=1)))
        assert obj["kind"] == "snapshot"
        assert obj["trace"] == delta_trace_context("s0", "tok", 2)
