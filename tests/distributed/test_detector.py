"""One-phase distributed detection over the delta protocol.

``DistributedChecker`` now maintains its global view from per-site
delta streams instead of re-merging buckets; these tests pin the
detection semantics (cross-site cycles, no-cycle, outages), the
O(change) sync behaviour, gap/checkpoint recovery, and — the acceptance
differential — report byte-identity with the legacy bucket path.
"""

from __future__ import annotations

import pytest

from repro.core.events import waiting_on
from repro.core.selection import GraphModel
from repro.distributed.delta import DeltaPublisher, encode_bucket
from repro.distributed.detector import (
    DistributedChecker,
    check_buckets,
    merge_payloads,
)
from repro.distributed.store import (
    InMemoryStore,
    StoreUnavailableError,
    encode_statuses,
)


def publish(store, site, statuses, publisher=None):
    """One delta-protocol publication round for ``site``."""
    publisher = publisher or DeltaPublisher(site)
    obj = publisher.prepare(encode_bucket(statuses))
    if obj is not None:
        store.append_delta(site, obj)
        publisher.commit(obj)
    return publisher


def crossed_knot():
    return (
        {"a": waiting_on("p", 1, p=1, q=0)},
        {"b": waiting_on("q", 1, q=1, p=0)},
    )


class TestMerge:
    def test_disjoint_union(self):
        payloads = {
            "s0": encode_statuses({"t1": waiting_on("p", 1, p=1)}),
            "s1": encode_statuses({"t2": waiting_on("q", 1, q=1)}),
        }
        snap = merge_payloads(payloads)
        assert set(snap.tasks) == {"t1", "t2"}

    def test_duplicate_task_rejected(self):
        blob = encode_statuses({"t1": waiting_on("p", 1, p=1)})
        with pytest.raises(ValueError):
            merge_payloads({"s0": blob, "s1": blob})

    def test_empty(self):
        assert merge_payloads({}).is_empty()


class TestGlobalCheck:
    def test_cross_site_cycle_found(self):
        """The deadlock spans two sites: neither site's local view has a
        cycle, the merged view does — the whole point of Section 5.2."""
        store = InMemoryStore()
        a, b = crossed_knot()
        publish(store, "s0", a)
        publish(store, "s1", b)
        checker = DistributedChecker(store)
        report = checker.check_global()
        assert report is not None
        assert set(report.tasks) == {"a", "b"}

    def test_no_cycle_no_report(self):
        store = InMemoryStore()
        publish(store, "s0", {"a": waiting_on("p", 1, p=1)})
        assert DistributedChecker(store).check_global() is None

    def test_store_outage_propagates(self):
        store = InMemoryStore()
        store.set_available(False)
        with pytest.raises(StoreUnavailableError):
            DistributedChecker(store).check_global()

    def test_model_configuration(self):
        store = InMemoryStore()
        a, b = crossed_knot()
        publish(store, "s0", a)
        publish(store, "s1", b)
        for model in (GraphModel.WFG, GraphModel.SG, GraphModel.AUTO):
            checker = DistributedChecker(store, model=model)
            assert checker.check_global() is not None
        assert checker.stats.checks == 1


class TestDeltaFedView:
    def test_idle_rounds_apply_no_ops(self):
        """The tentpole property: an unchanged cluster costs O(1) per
        round — no bucket re-merge, no status re-application."""
        store = InMemoryStore()
        a, b = crossed_knot()
        publish(store, "s0", a)
        publish(store, "s1", b)
        checker = DistributedChecker(store)
        checker.check_global()
        ops = checker.view.ops_applied
        for _ in range(5):
            checker.check_global()
        assert checker.view.ops_applied == ops

    def test_incremental_change_applies_only_the_change(self):
        store = InMemoryStore()
        pub = publish(store, "s0", {f"t{i}": waiting_on("p", i + 1, p=i + 1)
                                    for i in range(20)})
        checker = DistributedChecker(store)
        checker.check_global()
        ops = checker.view.ops_applied
        statuses = {f"t{i}": waiting_on("p", i + 1, p=i + 1) for i in range(20)}
        statuses["t20"] = waiting_on("q", 1, q=1)
        publish(store, "s0", statuses, pub)
        checker.check_global()
        assert checker.view.ops_applied == ops + 1  # one set op, not 21

    def test_gap_triggers_checkpoint_resync(self):
        store = InMemoryStore(max_log=2)
        pub = publish(store, "s0", {"a": waiting_on("p", 1, p=1)})
        checker = DistributedChecker(store)
        checker.check_global()
        statuses = {"a": waiting_on("p", 1, p=1)}
        for i in range(6):  # push the log past the cap
            statuses[f"x{i}"] = waiting_on(f"r{i}", 1, **{f"r{i}": 1})
            pub = publish(store, "s0", statuses, pub)
        # A second (cold) checker's cursor has been compacted off.
        cold = DistributedChecker(store)
        assert cold.check_global() is None
        assert cold.resyncs == 1
        assert set(cold.view.buckets["s0"]) == set(encode_bucket(statuses))

    def test_withdrawn_stream_drops_the_sites_tasks(self):
        store = InMemoryStore()
        a, b = crossed_knot()
        publish(store, "s0", a)
        publish(store, "s1", b)
        checker = DistributedChecker(store)
        assert checker.check_global() is not None
        store.delete("s1")
        # The cycle involved b; dropping s1's stream must clear it.
        assert checker.check_global() is None
        assert checker.view.sites() == ["s0"]

    def test_restarted_stream_resyncs(self):
        """A site that crashed and rejoined restarts at seq 1 with a
        snapshot; consumers ahead of the new tail must resync, not
        wedge."""
        store = InMemoryStore()
        pub = publish(store, "s0", {"a": waiting_on("p", 1, p=1)})
        for i in range(3):
            pub = publish(
                store, "s0",
                {"a": waiting_on("p", 1, p=1),
                 f"x{i}": waiting_on(f"r{i}", 1, **{f"r{i}": 1})},
                pub,
            )
        checker = DistributedChecker(store)
        checker.check_global()
        assert checker.view.cursor_seq("s0") == 4
        publish(store, "s0", {"b": waiting_on("q", 1, q=1)})  # fresh stream
        assert checker.check_global() is None
        assert checker.view.cursor_seq("s0") == 1
        assert set(checker.view.buckets["s0"]) == {"b"}

    def test_new_stream_overtaking_old_cursor_resyncs(self):
        """The aliasing hole stream tokens close: a restarted site's
        new stream reaches a seq *beyond* the consumer's old-stream
        cursor before the next poll.  Without tokens the numbers line
        up and new deltas would silently splice onto old state; with
        them the mismatch forces a checkpoint resync."""
        store = InMemoryStore()
        pub = None
        statuses = {}
        for i in range(5):
            statuses[f"x{i}"] = waiting_on(f"r{i}", 1, **{f"r{i}": 1})
            pub = publish(store, "s0", dict(statuses), pub)
        checker = DistributedChecker(store)
        checker.check_global()
        assert checker.view.cursor_seq("s0") == 5
        # The site restarts (fresh publisher incarnation) and its new
        # stream runs past seq 5 before the checker polls again.
        pub2 = None
        fresh = {}
        for i in range(6):
            fresh[f"y{i}"] = waiting_on(f"w{i}", 1, **{f"w{i}": 1})
            pub2 = publish(store, "s0", dict(fresh), pub2)
        assert checker.check_global() is None
        assert checker.resyncs == 1
        assert set(checker.view.buckets["s0"]) == set(encode_bucket(fresh))


class TestProtocolEquivalence:
    """The acceptance pin: distributed detection reports are
    byte-identical between the delta protocol and the bucket path."""

    def drive_both(self, rounds):
        """``rounds`` is a list of {site: statuses} cluster states; both
        protocols replay them and the per-round reports must match."""
        bucket_store = InMemoryStore("bucket")
        delta_store = InMemoryStore("delta")
        from repro.core.checker import DeadlockChecker

        bucket_checker = DeadlockChecker()
        delta_checker = DistributedChecker(delta_store)
        publishers = {}
        for state in rounds:
            for site, statuses in state.items():
                bucket_store.put(site, encode_statuses(statuses))
                publishers[site] = publish(
                    delta_store, site, statuses, publishers.get(site)
                )
            expected = check_buckets(bucket_store, checker=bucket_checker)
            actual = delta_checker.check_global()
            assert actual == expected
        return expected

    def test_cross_site_knot_reports_identical(self):
        a, b = crossed_knot()
        report = self.drive_both([
            {"s0": {"t0": waiting_on("w", 1, w=1)}, "s1": {}},
            {"s0": dict(a, t0=waiting_on("w", 1, w=1)), "s1": b},
        ])
        assert report is not None

    def test_churny_rounds_identical(self):
        rounds = []
        for r in range(1, 6):
            state = {}
            for s in range(3):
                statuses = {
                    f"s{s}t{i}": waiting_on("bar", r, bar=r)
                    for i in range(r % 3 + 1)
                }
                state[f"s{s}"] = statuses
            rounds.append(state)
        # Final round ties a cross-site knot.
        a, b = crossed_knot()
        rounds.append({"s0": a, "s1": b, "s2": {}})
        report = self.drive_both(rounds)
        assert report is not None

    def test_fixed_models_identical(self):
        a, b = crossed_knot()
        for model in (GraphModel.WFG, GraphModel.SG):
            bucket_store = InMemoryStore()
            delta_store = InMemoryStore()
            bucket_store.put("s0", encode_statuses(a))
            bucket_store.put("s1", encode_statuses(b))
            publish(delta_store, "s0", a)
            publish(delta_store, "s1", b)
            expected = check_buckets(bucket_store, model=model)
            actual = DistributedChecker(delta_store, model=model).check_global()
            assert actual == expected
            assert actual is not None
