"""One-phase distributed detection: merging and global analysis."""

from __future__ import annotations

import pytest

from repro.core.events import waiting_on
from repro.core.selection import GraphModel
from repro.distributed.detector import DistributedChecker, merge_payloads
from repro.distributed.store import (
    InMemoryStore,
    StoreUnavailableError,
    encode_statuses,
)


class TestMerge:
    def test_disjoint_union(self):
        payloads = {
            "s0": encode_statuses({"t1": waiting_on("p", 1, p=1)}),
            "s1": encode_statuses({"t2": waiting_on("q", 1, q=1)}),
        }
        snap = merge_payloads(payloads)
        assert set(snap.tasks) == {"t1", "t2"}

    def test_duplicate_task_rejected(self):
        blob = encode_statuses({"t1": waiting_on("p", 1, p=1)})
        with pytest.raises(ValueError):
            merge_payloads({"s0": blob, "s1": blob})

    def test_empty(self):
        assert merge_payloads({}).is_empty()


class TestGlobalCheck:
    def test_cross_site_cycle_found(self):
        """The deadlock spans two sites: neither site's local view has a
        cycle, the merged view does — the whole point of Section 5.2."""
        store = InMemoryStore()
        store.put(
            "s0", encode_statuses({"a": waiting_on("p", 1, p=1, q=0)})
        )
        store.put(
            "s1", encode_statuses({"b": waiting_on("q", 1, q=1, p=0)})
        )
        checker = DistributedChecker(store)
        report = checker.check_global()
        assert report is not None
        assert set(report.tasks) == {"a", "b"}

    def test_no_cycle_no_report(self):
        store = InMemoryStore()
        store.put("s0", encode_statuses({"a": waiting_on("p", 1, p=1)}))
        assert DistributedChecker(store).check_global() is None

    def test_store_outage_propagates(self):
        store = InMemoryStore()
        store.set_available(False)
        with pytest.raises(StoreUnavailableError):
            DistributedChecker(store).check_global()

    def test_model_configuration(self):
        store = InMemoryStore()
        store.put(
            "s0", encode_statuses({"a": waiting_on("p", 1, p=1, q=0)})
        )
        store.put(
            "s1", encode_statuses({"b": waiting_on("q", 1, q=1, p=0)})
        )
        for model in (GraphModel.WFG, GraphModel.SG, GraphModel.AUTO):
            checker = DistributedChecker(store, model=model)
            assert checker.check_global() is not None
        assert checker.stats.checks == 1
