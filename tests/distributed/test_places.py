"""Cluster end-to-end tests: cross-place deadlocks, fault tolerance."""

from __future__ import annotations

import time

import pytest

from repro.core.report import DeadlockDetectedError
from repro.runtime.clock import Clock
from repro.runtime.phaser import Phaser
from repro.distributed.places import Cluster


def averaging_across_places(cluster: Cluster, fix: bool):
    """The Section 2.1 deployment: the running example with one worker
    per place, synchronised by a distributed clock."""
    c = Clock(cluster[0].runtime)
    b = Phaser(cluster[0].runtime, register_self=True, name="join")

    def worker():
        c.advance()
        c.drop()
        b.arrive_and_deregister()

    tasks = []
    for place in cluster.places:
        tasks.append(place.spawn(worker, register=[c, b]))
    if fix:
        c.drop()
    b.arrive_and_await_advance()
    return tasks


class TestCrossPlaceDeadlock:
    def test_detected_and_cancelled(self):
        with Cluster(2, check_interval_s=0.03, publish_interval_s=0.01) as cl:
            with pytest.raises(DeadlockDetectedError):
                averaging_across_places(cl, fix=False)
            assert cl.all_reports()

    def test_fixed_variant_clean(self):
        with Cluster(2, check_interval_s=0.03, publish_interval_s=0.01) as cl:
            tasks = averaging_across_places(cl, fix=True)
            cl.join_all(tasks, timeout=10)
            assert not cl.all_reports()

    def test_detection_with_replicated_store(self):
        with Cluster(
            2, replicas=2, check_interval_s=0.03, publish_interval_s=0.01
        ) as cl:
            cl.store_replicas[0].set_available(False)  # lose the primary
            with pytest.raises(DeadlockDetectedError):
                averaging_across_places(cl, fix=False)

    def test_detection_survives_site_death(self):
        with Cluster(3, check_interval_s=0.03, publish_interval_s=0.01) as cl:
            cl[2].kill()
            with pytest.raises(DeadlockDetectedError):
                averaging_across_places(cl, fix=False)


class TestClusterApi:
    def test_len_and_indexing(self):
        cl = Cluster(3)
        assert len(cl) == 3
        assert cl[1].site_id == "place1"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_run_everywhere(self):
        with Cluster(3, check_interval_s=0.05) as cl:
            tasks = cl.run_everywhere(lambda site: site.site_id)
            results = cl.join_all(tasks, timeout=10)
            assert results == ["place0", "place1", "place2"]

    def test_total_check_stats_merges(self):
        with Cluster(2, check_interval_s=0.01, publish_interval_s=0.01) as cl:
            time.sleep(0.1)
        stats = cl.total_check_stats()
        assert stats.checks > 0
