"""Site tests: publishing/checking loops, de-dup, failures."""

from __future__ import annotations

import time

from repro.core.events import waiting_on
from repro.distributed.site import Site
from repro.distributed.store import InMemoryStore


def load_local_deadlock(site: Site) -> None:
    """Two tasks of this site in a crossed wait (via the checker API
    directly; runtime-driven variants live in test_places)."""
    dep = site.runtime.checker.dependency
    dep.set_blocked("a", waiting_on("p", 1, p=1, q=0))
    dep.set_blocked("b", waiting_on("q", 1, q=1, p=0))


class TestSynchronousRounds:
    def test_publish_then_check_detects(self):
        store = InMemoryStore()
        site = Site("s0", store, cancel_on_detect=False)
        load_local_deadlock(site)
        report = site.poll_detection()
        assert report is not None
        assert store.get("s0")  # the bucket was published

    def test_duplicate_cycles_deduplicated(self):
        site = Site("s0", InMemoryStore(), cancel_on_detect=False)
        load_local_deadlock(site)
        assert site.poll_detection() is not None
        assert site.poll_detection() is None  # same cycle, not re-reported
        assert len(site.reports) == 1

    def test_callback(self):
        seen = []
        site = Site(
            "s0",
            InMemoryStore(),
            cancel_on_detect=False,
            on_deadlock=seen.append,
        )
        load_local_deadlock(site)
        site.poll_detection()
        assert len(seen) == 1


class TestBackgroundLoops:
    def test_detects_in_background(self):
        store = InMemoryStore()
        with Site(
            "s0",
            store,
            check_interval_s=0.02,
            publish_interval_s=0.01,
            cancel_on_detect=False,
        ) as site:
            load_local_deadlock(site)
            deadline = time.time() + 5.0
            while not site.reports and time.time() < deadline:
                time.sleep(0.01)
        assert site.reports

    def test_store_outage_counted_and_survived(self):
        store = InMemoryStore()
        with Site(
            "s0", store, check_interval_s=0.01, publish_interval_s=0.01
        ) as site:
            store.set_available(False)
            time.sleep(0.1)
            assert site.publish_failures > 0 or site.check_failures > 0
            store.set_available(True)
            load_local_deadlock(site)
            deadline = time.time() + 5.0
            while not site.reports and time.time() < deadline:
                time.sleep(0.01)
            assert site.reports  # recovered after the outage

    def test_kill_leaves_stale_bucket(self):
        store = InMemoryStore()
        site = Site("s0", store, publish_interval_s=0.01).start()
        load_local_deadlock(site)
        time.sleep(0.1)
        site.kill()
        assert not site.alive
        assert store.get("s0") is not None  # the crash leaves it behind

    def test_graceful_stop_withdraws_bucket(self):
        store = InMemoryStore()
        site = Site("s0", store, publish_interval_s=0.01).start()
        time.sleep(0.05)
        site.stop()
        assert store.get("s0") is None
