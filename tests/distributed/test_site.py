"""Site tests: delta publishing/checking loops, de-dup, failures."""

from __future__ import annotations

import time

import pytest

from repro.core.events import waiting_on
from repro.distributed.delta import DeltaSequenceError, make_snapshot
from repro.distributed.site import Site
from repro.distributed.store import InMemoryStore


def load_local_deadlock(site: Site) -> None:
    """Two tasks of this site in a crossed wait (via the checker API
    directly; runtime-driven variants live in test_places)."""
    dep = site.runtime.checker.dependency
    dep.set_blocked("a", waiting_on("p", 1, p=1, q=0))
    dep.set_blocked("b", waiting_on("q", 1, q=1, p=0))


class TestSynchronousRounds:
    def test_publish_then_check_detects(self):
        store = InMemoryStore()
        site = Site("s0", store, cancel_on_detect=False)
        load_local_deadlock(site)
        report = site.poll_detection()
        assert report is not None
        stream, seq, state = store.get_state("s0")  # the stream was published
        assert seq == 1 and set(state) == {"a", "b"}

    def test_first_publish_is_a_snapshot_then_deltas(self):
        store = InMemoryStore()
        site = Site("s0", store, cancel_on_detect=False)
        dep = site.runtime.checker.dependency
        dep.set_blocked("a", waiting_on("p", 1, p=1))
        site._publish_once()
        dep.set_blocked("b", waiting_on("q", 1, q=1))
        site._publish_once()
        objs = store.get_deltas("s0", 0)
        assert [o["kind"] for o in objs] == ["snapshot", "delta"]
        assert set(objs[1]["set"]) == {"b"}

    def test_unchanged_rounds_publish_nothing(self):
        store = InMemoryStore()
        site = Site("s0", store, cancel_on_detect=False)
        load_local_deadlock(site)
        site._publish_once()
        puts = store.puts
        site._publish_once()
        site._publish_once()
        assert store.puts == puts  # nothing changed, nothing on the wire

    def test_duplicate_cycles_deduplicated(self):
        site = Site("s0", InMemoryStore(), cancel_on_detect=False)
        load_local_deadlock(site)
        assert site.poll_detection() is not None
        assert site.poll_detection() is None  # same cycle, not re-reported
        assert len(site.reports) == 1

    def test_callback(self):
        seen = []
        site = Site(
            "s0",
            InMemoryStore(),
            cancel_on_detect=False,
            on_deadlock=seen.append,
        )
        load_local_deadlock(site)
        site.poll_detection()
        assert len(seen) == 1

    def test_store_gap_heals_with_forced_checkpoint(self):
        """The publisher-gap fault path: the store lost the site's
        stream (a failover artefact), the next append raises a sequence
        gap, and the site responds with a full snapshot checkpoint
        instead of wedging."""
        store = InMemoryStore()
        site = Site("s0", store, cancel_on_detect=False)
        dep = site.runtime.checker.dependency
        dep.set_blocked("a", waiting_on("p", 1, p=1))
        site._publish_once()
        store.delete("s0")  # the store forgot us
        dep.set_blocked("b", waiting_on("q", 1, q=1))
        site._publish_once()  # delta seq 2 has no stream -> checkpoint
        stream, seq, state = store.get_state("s0")
        assert set(state) == {"a", "b"}
        objs = store.get_deltas("s0", seq - 1)
        assert objs[-1]["kind"] == "snapshot"

    def test_outage_does_not_burn_sequence_numbers(self):
        store = InMemoryStore()
        site = Site("s0", store, cancel_on_detect=False)
        dep = site.runtime.checker.dependency
        dep.set_blocked("a", waiting_on("p", 1, p=1))
        site._publish_once()
        store.set_available(False)
        dep.set_blocked("b", waiting_on("q", 1, q=1))
        with pytest.raises(Exception):
            site._publish_once()
        store.set_available(True)
        site._publish_once()  # the lost change re-derives, seq 2
        objs = store.get_deltas("s0", 1)
        assert [o["seq"] for o in objs] == [2]
        assert set(objs[0]["set"]) == {"b"}


class TestBackgroundLoops:
    def test_detects_in_background(self):
        store = InMemoryStore()
        with Site(
            "s0",
            store,
            check_interval_s=0.02,
            publish_interval_s=0.01,
            cancel_on_detect=False,
        ) as site:
            load_local_deadlock(site)
            deadline = time.time() + 5.0
            while not site.reports and time.time() < deadline:
                time.sleep(0.01)
        assert site.reports

    def test_first_round_runs_immediately(self):
        """The loop body runs once on start: a site is visible to the
        cluster well before one publish_interval_s has elapsed."""
        store = InMemoryStore()
        site = Site(
            "s0", store, publish_interval_s=30.0, check_interval_s=30.0
        )
        load_local_deadlock(site)
        site.start()
        try:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                if "s0" in store.delta_sites():
                    break
                time.sleep(0.005)
            assert "s0" in store.delta_sites()
        finally:
            site.stop(timeout=0.2)

    def test_store_outage_counted_and_survived(self):
        store = InMemoryStore()
        with Site(
            "s0", store, check_interval_s=0.01, publish_interval_s=0.01
        ) as site:
            store.set_available(False)
            time.sleep(0.1)
            assert site.publish_failures > 0 or site.check_failures > 0
            store.set_available(True)
            load_local_deadlock(site)
            deadline = time.time() + 5.0
            while not site.reports and time.time() < deadline:
                time.sleep(0.01)
            assert site.reports  # recovered after the outage

    def test_kill_leaves_stale_delta_stream(self):
        """The satellite fault path: abrupt death leaves the stream
        behind (exactly what a crashed machine leaves), and other
        checkers keep seeing its last published state."""
        store = InMemoryStore()
        site = Site("s0", store, publish_interval_s=0.01).start()
        load_local_deadlock(site)
        deadline = time.time() + 5.0
        while time.time() < deadline:
            try:
                if store.get_state("s0")[2]:
                    break
            except DeltaSequenceError:
                pass
            time.sleep(0.005)
        site.kill()
        assert not site.alive
        assert "s0" in store.delta_sites()  # the crash leaves it behind
        stream, seq, state = store.get_state("s0")
        assert set(state) == {"a", "b"}
        # A peer checker still merges the dead site's statuses.
        from repro.distributed.detector import DistributedChecker

        peer = DistributedChecker(store)
        report = peer.check_global()
        assert report is not None and set(report.tasks) == {"a", "b"}

    def test_graceful_stop_withdraws_stream(self):
        store = InMemoryStore()
        site = Site("s0", store, publish_interval_s=0.01).start()
        time.sleep(0.05)
        site.stop()
        assert store.delta_sites() == []


class TestLoopFailureVisibility:
    """Regressions for the shutdown/liveness sweep: a wedged or dead
    loop must be *observable* — dirty stop flags, error slots, failure
    metrics — never silently swallowed."""

    def test_wedged_loop_body_makes_stop_dirty(self):
        import threading

        store = InMemoryStore()
        site = Site("s0", store, publish_interval_s=0.01)
        release = threading.Event()
        site._publish_once = release.wait  # a deliberately wedged body
        site.start()
        try:
            assert site.stop(timeout=0.1) is False  # dirty: logged, flagged
            assert not site.alive
        finally:
            release.set()
        # The wedged thread stayed tracked; once its body unblocks, a
        # later stop observes the clean exit.
        deadline = time.time() + 5.0
        while any(t.is_alive() for t in site._threads) and time.time() < deadline:
            time.sleep(0.01)
        assert site.stop(timeout=1.0) is True

    def test_clean_stop_returns_true(self):
        site = Site("s0", InMemoryStore(), publish_interval_s=0.01).start()
        time.sleep(0.03)
        assert site.stop() is True

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )  # the re-raise after recording is the contract under test
    def test_loop_death_recorded_in_error_slot_and_metric(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        store = InMemoryStore()
        site = Site("s0", store, publish_interval_s=0.01, metrics=registry)

        def boom():
            raise RuntimeError("synthetic publisher failure")

        site._publish_once = boom
        site.start()
        try:
            deadline = time.time() + 5.0
            while "publisher" not in site.loop_errors and time.time() < deadline:
                time.sleep(0.01)
            assert isinstance(site.loop_errors["publisher"], RuntimeError)
            # The failure is metered before the thread dies...
            assert site._m_publishes.value(site="s0", outcome="error") == 1
        finally:
            site.stop(timeout=1.0)
        # ... and an outage (StoreUnavailableError) still does NOT use
        # the error slot — it's tolerated, not fatal (pinned elsewhere:
        # test_store_outage_counted_and_survived).

    def test_outage_does_not_populate_error_slot(self):
        store = InMemoryStore()
        with Site(
            "s0", store, check_interval_s=0.01, publish_interval_s=0.01
        ) as site:
            store.set_available(False)
            # Give the publisher a change to push, so both loops hit
            # the dead store (an unchanged round never touches it).
            load_local_deadlock(site)
            deadline = time.time() + 5.0
            while (
                not (site.publish_failures and site.check_failures)
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert site.publish_failures > 0 and site.check_failures > 0
            assert site.loop_errors == {}  # tolerated, loops still alive
            store.set_available(True)
