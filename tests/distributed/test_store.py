"""Store tests: buckets, wire format, failure injection, replication."""

from __future__ import annotations

import pytest

from repro.core.events import BlockedStatus, Event, waiting_on
from repro.distributed.store import (
    InMemoryStore,
    ReplicatedStore,
    StoreUnavailableError,
    decode_statuses,
    encode_statuses,
)


class TestWireFormat:
    def test_roundtrip(self):
        statuses = {
            "t1": waiting_on("pc", 1, pc=1, pb=0),
            "t2": BlockedStatus(
                waits=frozenset({Event("a", 2), Event("b", 1)}),
                registered={"a": 1},
                generation=7,
            ),
        }
        decoded = decode_statuses(encode_statuses(statuses))
        assert decoded["t1"].waits == statuses["t1"].waits
        assert dict(decoded["t1"].registered) == dict(statuses["t1"].registered)
        assert decoded["t2"].waits == statuses["t2"].waits
        assert decoded["t2"].generation == 7

    def test_encoding_is_json_plain(self):
        import json

        blob = encode_statuses({"t": waiting_on("p", 1, p=1)})
        json.dumps(blob)  # must not raise


class TestInMemoryStore:
    def test_put_get(self):
        store = InMemoryStore()
        store.put("site0", {"a": 1})
        assert store.get("site0") == {"a": 1}
        assert store.get("missing") is None

    def test_put_replaces_bucket(self):
        store = InMemoryStore()
        store.put("s", {"a": 1})
        store.put("s", {"b": 2})
        assert store.get("s") == {"b": 2}

    def test_get_all_snapshot(self):
        store = InMemoryStore()
        store.put("s1", {"x": 1})
        store.put("s2", {"y": 2})
        snap = store.get_all()
        store.put("s3", {"z": 3})
        assert set(snap) == {"s1", "s2"}

    def test_delete(self):
        store = InMemoryStore()
        store.put("s", {})
        store.delete("s")
        assert store.get("s") is None

    def test_outage_raises(self):
        store = InMemoryStore()
        store.set_available(False)
        with pytest.raises(StoreUnavailableError):
            store.put("s", {})
        with pytest.raises(StoreUnavailableError):
            store.get_all()

    def test_recovery(self):
        store = InMemoryStore()
        store.put("s", {"a": 1})
        store.set_available(False)
        store.set_available(True)
        assert store.get("s") == {"a": 1}

    def test_traffic_counters(self):
        store = InMemoryStore()
        store.put("s", {})
        store.get_all()
        assert store.puts == 1
        assert store.gets == 1


class TestReplicatedStore:
    def test_requires_replicas(self):
        with pytest.raises(ValueError):
            ReplicatedStore([])

    def test_write_through(self):
        replicas = [InMemoryStore(f"r{i}") for i in range(3)]
        store = ReplicatedStore(replicas)
        store.put("s", {"a": 1})
        assert all(r.get("s") == {"a": 1} for r in replicas)

    def test_survives_partial_outage(self):
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        replicas[0].set_available(False)
        store.put("s", {"a": 1})
        assert store.get_all() == {"s": {"a": 1}}

    def test_total_outage_raises(self):
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        for r in replicas:
            r.set_available(False)
        with pytest.raises(StoreUnavailableError):
            store.put("s", {})
        with pytest.raises(StoreUnavailableError):
            store.get_all()

    def test_recovered_replica_resyncs_on_next_write(self):
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        store.put("s", {"v": 1})
        replicas[0].set_available(False)
        store.put("s", {"v": 2})  # only r1 sees it
        replicas[0].set_available(True)
        assert replicas[0].get("s") == {"v": 1}  # stale...
        store.put("s", {"v": 3})
        assert replicas[0].get("s") == {"v": 3}  # ...healed by the write
