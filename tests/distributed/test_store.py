"""Store tests: delta streams, wire format, failure injection, replication.

The delta protocol's fault story is pinned here: stores validate stream
contiguity (gap -> :class:`DeltaSequenceError`, the "checkpoint needed"
signal), compact logs at snapshots, and the replicated facade heals a
recovered-stale replica by requesting a checkpoint from a healthy one.
The legacy bucket surface (``put``/``get_all``) keeps its original
semantics for old traces and the delta-vs-bucket benchmark.
"""

from __future__ import annotations

import pytest

from repro.core.events import BlockedStatus, Event, waiting_on
from repro.distributed.delta import (
    DeltaPublisher,
    DeltaSequenceError,
    encode_bucket,
    make_snapshot,
)
from repro.distributed.store import (
    InMemoryStore,
    ReplicatedStore,
    StoreUnavailableError,
    decode_statuses,
    encode_statuses,
)


def delta(seq, set=None, restore=None, clear=None, stream="S"):
    return {
        "v": 1,
        "stream": stream,
        "seq": seq,
        "kind": "delta",
        "set": set or {},
        "restore": restore or {},
        "clear": clear or [],
    }


def blob(task="t", phaser="p", phase=1):
    return encode_bucket({task: waiting_on(phaser, phase, **{phaser: phase})})


class TestWireFormat:
    def test_roundtrip(self):
        statuses = {
            "t1": waiting_on("pc", 1, pc=1, pb=0),
            "t2": BlockedStatus(
                waits=frozenset({Event("a", 2), Event("b", 1)}),
                registered={"a": 1},
                generation=7,
            ),
        }
        decoded = decode_statuses(encode_statuses(statuses))
        assert decoded["t1"].waits == statuses["t1"].waits
        assert dict(decoded["t1"].registered) == dict(statuses["t1"].registered)
        assert decoded["t2"].waits == statuses["t2"].waits
        assert decoded["t2"].generation == 7

    def test_encoding_is_json_plain(self):
        import json

        blob = encode_statuses({"t": waiting_on("p", 1, p=1)})
        json.dumps(blob)  # must not raise


class TestDeltaStream:
    def test_snapshot_opens_a_stream(self):
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        stream, seq, state = store.get_state("s0")
        assert (stream, seq) == ("S", 1) and set(state) == {"a"}
        assert store.delta_sites() == ["s0"]

    def test_deltas_extend_and_materialise(self):
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        store.append_delta("s0", delta(2, set=blob("b", "q")))
        store.append_delta("s0", delta(3, clear=["a"]))
        stream, seq, state = store.get_state("s0")
        assert seq == 3 and set(state) == {"b"}

    def test_gap_rejected(self):
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, {}, "S"))
        with pytest.raises(DeltaSequenceError):
            store.append_delta("s0", delta(3))

    def test_delta_without_stream_rejected(self):
        store = InMemoryStore()
        with pytest.raises(DeltaSequenceError):
            store.append_delta("s0", delta(1))

    def test_get_deltas_serves_from_cursor(self):
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        store.append_delta("s0", delta(2, set=blob("b", "q")))
        out = store.get_deltas("s0", 0)
        assert [o["seq"] for o in out] == [1, 2]
        assert store.get_deltas("s0", 2) == []

    def test_cursor_ahead_of_tail_raises(self):
        """A site restarting its stream (fresh snapshot at seq 1) makes
        old cursors unservable — the consumer must resync."""
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        with pytest.raises(DeltaSequenceError):
            store.get_deltas("s0", 9)

    def test_snapshot_compacts_the_log(self):
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, {}, "S"))
        store.append_delta("s0", delta(2, set=blob("a")))
        store.append_delta("s0", make_snapshot(3, blob("a"), "S"))
        # The pre-snapshot entries are gone; old cursors fall back.
        with pytest.raises(DeltaSequenceError):
            store.get_deltas("s0", 0)
        assert [o["seq"] for o in store.get_deltas("s0", 2)] == [3]

    def test_log_cap_compacts(self):
        store = InMemoryStore(max_log=4)
        store.append_delta("s0", make_snapshot(1, {}, "S"))
        for i in range(2, 12):
            store.append_delta("s0", delta(i, set={f"t{i}": blob("x")["x"]}))
        with pytest.raises(DeltaSequenceError):
            store.get_deltas("s0", 1)  # compacted off
        assert len(store.get_deltas("s0", 11 - 4)) == 4

    def test_delete_removes_the_stream(self):
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        store.delete("s0")
        assert store.delta_sites() == []
        with pytest.raises(DeltaSequenceError):
            store.get_state("s0")

    def test_outage_raises(self):
        store = InMemoryStore()
        store.append_delta("s0", make_snapshot(1, {}, "S"))
        store.set_available(False)
        with pytest.raises(StoreUnavailableError):
            store.append_delta("s0", delta(2))
        with pytest.raises(StoreUnavailableError):
            store.get_deltas("s0", 0)
        with pytest.raises(StoreUnavailableError):
            store.delta_sites()

    def test_traffic_accounting(self):
        store = InMemoryStore(track_bytes=True)
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        store.get_deltas("s0", 0)
        assert store.puts == 1 and store.gets == 1
        assert store.bytes_put > 0 and store.bytes_get >= store.bytes_put


class TestLegacyBuckets:
    def test_put_get(self):
        store = InMemoryStore()
        store.put("site0", {"a": 1})
        assert store.get("site0") == {"a": 1}
        assert store.get("missing") is None

    def test_put_replaces_bucket(self):
        store = InMemoryStore()
        store.put("s", {"a": 1})
        store.put("s", {"b": 2})
        assert store.get("s") == {"b": 2}

    def test_get_all_snapshot(self):
        store = InMemoryStore()
        store.put("s1", {"x": 1})
        store.put("s2", {"y": 2})
        snap = store.get_all()
        store.put("s3", {"z": 3})
        assert set(snap) == {"s1", "s2"}

    def test_recovery(self):
        store = InMemoryStore()
        store.put("s", {"a": 1})
        store.set_available(False)
        store.set_available(True)
        assert store.get("s") == {"a": 1}


class TestReplicatedStore:
    def test_requires_replicas(self):
        with pytest.raises(ValueError):
            ReplicatedStore([])

    def test_delta_write_through(self):
        replicas = [InMemoryStore(f"r{i}") for i in range(3)]
        store = ReplicatedStore(replicas)
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        store.append_delta("s0", delta(2, set=blob("b", "q")))
        for replica in replicas:
            stream, seq, state = replica.get_state("s0")
            assert seq == 2 and set(state) == {"a", "b"}

    def test_survives_partial_outage(self):
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        replicas[0].set_available(False)
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        assert store.get_state("s0")[2]

    def test_total_outage_raises(self):
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        for r in replicas:
            r.set_available(False)
        with pytest.raises(StoreUnavailableError):
            store.append_delta("s0", make_snapshot(1, {}, "S"))
        with pytest.raises(StoreUnavailableError):
            store.delta_sites()

    def test_recovered_replica_heals_via_checkpoint(self):
        """The satellite fault path: a replica dies mid-stream, misses
        deltas, recovers — the next write-through detects its sequence
        gap and heals it with a checkpoint from a healthy replica."""
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        replicas[0].set_available(False)
        store.append_delta("s0", delta(2, set=blob("b", "q")))  # r0 misses it
        replicas[0].set_available(True)
        assert replicas[0].get_state("s0")[1] == 1  # stale...
        store.append_delta("s0", delta(3, set=blob("c", "r")))
        seq0, state0 = replicas[0].get_state("s0")[1:]
        seq1, state1 = replicas[1].get_state("s0")[1:]
        assert seq0 == seq1 == 3  # ...healed by the checkpoint
        assert state0 == state1

    def test_all_live_replicas_stale_signals_publisher(self):
        """Failover onto recovered-stale replicas only: the facade
        cannot heal anyone (no healthy copy exists), so the publisher
        is told to checkpoint — and the checkpoint then lands."""
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        for r in replicas:
            r.set_available(False)
        # The publisher's appends fail as outages (seq 2 never lands).
        with pytest.raises(StoreUnavailableError):
            store.append_delta("s0", delta(2, set=blob("b", "q")))
        for r in replicas:
            r.set_available(True)
        with pytest.raises(DeltaSequenceError):
            store.append_delta("s0", delta(3, set=blob("c", "r")))
        store.append_delta("s0", make_snapshot(3, blob("c", "r"), "S"))
        assert store.get_state("s0")[1] == 3

    def test_read_repair_heals_idle_sites(self):
        """The idle-site fault path: a site with no further changes
        never appends, so write-repair alone would leave a recovered
        replica stale forever. Any delta *read* probes replica tails
        and heals divergents from the newest stream."""
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        store.append_delta("s0", make_snapshot(1, blob("a"), "S"))
        replicas[1].set_available(False)
        store.append_delta("s0", delta(2, clear=["a"]))  # r1 misses the clear
        replicas[1].set_available(True)
        assert replicas[1].get_state("s0")[1] == 1  # stale: still holds a
        # The site is now idle (no appends); a checker's ordinary read
        # must still heal r1.
        store.get_deltas("s0", 2)
        assert replicas[1].get_state("s0")[1] == 2
        assert replicas[1].get_state("s0")[2] == {}  # the clear arrived

    def test_read_repair_prefers_the_newest_stream(self):
        """Divergent streams: the lexicographically greatest
        (time-prefixed) stream token wins, whoever answered the read —
        a stale replica serving first must not clobber a newer one."""
        from repro.distributed.delta import fresh_stream_token

        old_stream = fresh_stream_token()
        new_stream = fresh_stream_token()
        assert old_stream < new_stream  # time-ordered tokens
        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        # r0 holds the old incarnation, r1 the new one.
        replicas[0].append_delta("s0", make_snapshot(5, blob("a"), old_stream))
        replicas[1].append_delta("s0", make_snapshot(1, blob("b", "q"), new_stream))
        store.get_state("s0")  # served by r0 (first reachable) ...
        # ... but the heal direction follows the newest stream.
        assert replicas[0].get_state("s0")[0] == new_stream
        assert set(replicas[0].get_state("s0")[2]) == {"b"}

    def test_replica_missing_a_sites_whole_stream_cannot_hide_it(self):
        """A replica that was down for a site's *first* publish has no
        stream for it at all.  Its listing must not be authoritative
        (the union keeps the site visible), reads must fail over to a
        replica that has the stream, and read-repair must then heal the
        empty replica — otherwise an idle site's deadlocked tasks would
        be silently dropped from every checker's view."""
        from repro.core.events import waiting_on
        from repro.distributed.delta import DeltaPublisher, encode_bucket
        from repro.distributed.detector import DistributedChecker

        replicas = [InMemoryStore(f"r{i}") for i in range(2)]
        store = ReplicatedStore(replicas)
        replicas[0].set_available(False)
        pub = DeltaPublisher("sX")
        knot = {
            "a": waiting_on("p", 1, p=1, q=0),
            "b": waiting_on("q", 1, q=1, p=0),
        }
        obj = pub.prepare(encode_bucket(knot))
        store.append_delta("sX", obj)  # lands on r1 only
        pub.commit(obj)
        replicas[0].set_available(True)
        assert replicas[0].delta_sites() == []  # r0 never saw sX
        assert "sX" in store.delta_sites()  # ...but the union has it
        checker = DistributedChecker(store)
        report = checker.check_global()  # served via failover to r1
        assert report is not None and set(report.tasks) == {"a", "b"}
        # The read healed r0: it now carries sX's stream too.
        assert "sX" in replicas[0].delta_sites()
        assert set(replicas[0].get_state("sX")[2]) == {"a", "b"}
