"""Exporter tests: Prometheus exposition round-trip, canonical JSON."""

from __future__ import annotations

import json
import math

from repro.obs.export import parse_prometheus, to_json, to_prometheus
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


def loaded() -> MetricsRegistry:
    reg = MetricsRegistry()
    ops = reg.counter("repro_ops_total", "Operations, by kind.", labels=("op",))
    ops.inc(3, op="put")
    ops.inc(1, op="get")
    reg.gauge("repro_depth", "Current depth.").set(2.5)
    h = reg.histogram("repro_sizes", "Sizes.", buckets=(1, 10, 100))
    for v in (0, 5, 5, 1000):
        h.observe(v)
    return reg


class TestPrometheusFormat:
    def test_help_and_type_preambles(self):
        text = to_prometheus(loaded())
        assert "# HELP repro_ops_total Operations, by kind." in text
        assert "# TYPE repro_ops_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_sizes histogram" in text

    def test_counter_and_gauge_samples(self):
        lines = to_prometheus(loaded()).splitlines()
        assert 'repro_ops_total{op="get"} 1' in lines
        assert 'repro_ops_total{op="put"} 3' in lines
        assert "repro_depth 2.5" in lines

    def test_histogram_cumulative_buckets(self):
        lines = to_prometheus(loaded()).splitlines()
        assert 'repro_sizes_bucket{le="1"} 1' in lines
        assert 'repro_sizes_bucket{le="10"} 3' in lines
        assert 'repro_sizes_bucket{le="100"} 3' in lines
        assert 'repro_sizes_bucket{le="+Inf"} 4' in lines
        assert "repro_sizes_sum 1010" in lines
        assert "repro_sizes_count 4" in lines

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("path",)).inc(path='a\\b"c\nd')
        text = to_prometheus(reg)
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert to_prometheus(NULL_REGISTRY) == ""

    def test_volatile_excluded_on_request(self):
        reg = MetricsRegistry()
        reg.counter("keep_total").inc()
        reg.counter("drop_total", volatile=True).inc()
        text = to_prometheus(reg, volatile=False)
        assert "keep_total" in text and "drop_total" not in text


class TestPrometheusRoundTrip:
    def test_parse_recovers_every_sample(self):
        reg = loaded()
        families = parse_prometheus(to_prometheus(reg))
        ops = families["repro_ops_total"]
        assert ops["type"] == "counter"
        assert ops["help"] == "Operations, by kind."
        assert ops["samples"][("repro_ops_total", (("op", "put"),))] == 3
        assert ops["samples"][("repro_ops_total", (("op", "get"),))] == 1
        assert families["repro_depth"]["samples"][("repro_depth", ())] == 2.5

    def test_histogram_folds_into_one_family(self):
        families = parse_prometheus(to_prometheus(loaded()))
        sizes = families["repro_sizes"]
        assert sizes["type"] == "histogram"
        samples = sizes["samples"]
        assert samples[("repro_sizes_bucket", (("le", "+Inf"),))] == 4
        assert samples[("repro_sizes_sum", ())] == 1010
        assert samples[("repro_sizes_count", ())] == 4
        assert not math.isnan(samples[("repro_sizes_bucket", (("le", "1"),))])

    def test_label_escape_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("path",)).inc(path='a\\b"c\nd')
        families = parse_prometheus(to_prometheus(reg))
        key = ("c_total", (("path", 'a\\b"c\nd'),))
        assert families["c_total"]["samples"][key] == 1


class TestCanonicalJson:
    def test_shape_and_trailing_newline(self):
        text = to_json(loaded())
        assert text.endswith("\n")
        snap = json.loads(text)
        assert snap["v"] == 1
        assert [m["name"] for m in snap["metrics"]] == sorted(
            m["name"] for m in snap["metrics"]
        )

    def test_byte_stable_across_equal_registries(self):
        assert to_json(loaded()) == to_json(loaded())

    def test_volatile_flag_filters(self):
        reg = MetricsRegistry()
        reg.counter("keep_total").inc()
        reg.histogram("t_seconds", volatile=True).observe(0.1)
        names = [m["name"] for m in json.loads(to_json(reg, volatile=False))["metrics"]]
        assert names == ["keep_total"]

    def test_indent_mode_parses_identically(self):
        compact = json.loads(to_json(loaded()))
        pretty = json.loads(to_json(loaded(), indent=2))
        assert compact == pretty
