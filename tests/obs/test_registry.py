"""Registry semantics: determinism, merge algebra, the disabled twin.

The properties pinned here are the ones the rest of the stack leans on:

* snapshots are *canonical* — metric order, child order and label
  order are functions of the data, never of call order;
* ``merge`` is associative and commutative, so parallel-replay fan-in
  may fold worker registries in any order;
* the :data:`~repro.obs.registry.NULL_REGISTRY` twin is a true no-op —
  identical instrument surface, empty snapshot, zero state.
"""

from __future__ import annotations

import pickle

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


def make_loaded(order: str = "forward") -> MetricsRegistry:
    """A registry with one of each instrument kind; ``order`` varies the
    creation and increment order without varying the data."""
    reg = MetricsRegistry()
    steps = [
        lambda: reg.counter("c_total", "a counter", labels=("op",)).inc(2, op="put"),
        lambda: reg.counter("c_total", "a counter", labels=("op",)).inc(3, op="get"),
        lambda: reg.gauge("g", "a gauge").set(7),
        lambda: reg.histogram("h", "sizes", buckets=(1, 10, 100)).observe(5),
        lambda: reg.histogram("h", "sizes", buckets=(1, 10, 100)).observe(500),
    ]
    if order == "reverse":
        steps = list(reversed(steps))
    for step in steps:
        step()
    return reg


class TestCounters:
    def test_inc_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        c.inc(op="put")
        c.inc(4, op="get")
        assert c.value(op="put") == 1
        assert c.value(op="get") == 4
        assert c.total() == 5
        assert c.per_label() == {("put",): 1, ("get",): 4}

    def test_bound_counter_shares_storage(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        bound = c.labels(op="put")
        bound.inc()
        bound.inc(2)
        assert c.value(op="put") == 3

    def test_labels_does_not_create_children(self):
        """Pre-binding every enum value must not materialise zero-count
        children (checker tests compare model-count dicts exactly)."""
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        c.labels(op="never_used")
        assert c.per_label() == {}
        assert c.snapshot()["values"] == []

    def test_schema_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labels=("b",))
        with pytest.raises(ValueError):
            reg.gauge("x_total")


class TestGaugesAndHistograms:
    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_histogram_buckets_and_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", buckets=(1, 10, 100))
        for v in (0, 1, 5, 50, 1000):
            h.observe(v)
        snap = h.snapshot()["values"][0]
        # bisect_left: a value equal to an upper bound lands below it.
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == 1056
        assert snap["min"] == 0 and snap["max"] == 1000

    def test_quantiles_clamped_to_observed_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", buckets=(1, 10, 100))
        for v in (2, 3, 4):
            h.observe(v)
        assert h.quantile(0.5) == 4  # upper bound 10, clamped to vmax
        assert h.quantile(1.0) == 4

    def test_span_records_into_volatile_histogram(self):
        reg = MetricsRegistry()
        span = reg.span("work", buckets=DEFAULT_LATENCY_BUCKETS_S)
        with span:
            pass
        hist = reg.get("work_duration_seconds")
        assert hist.volatile
        assert hist.count_of() == 1

    def test_span_is_reentrant(self):
        reg = MetricsRegistry()
        span = reg.span("work")
        with span:
            with span:
                pass
        assert reg.get("work_duration_seconds").count_of() == 2


class TestSnapshotDeterminism:
    def test_snapshot_independent_of_creation_order(self):
        assert make_loaded("forward").snapshot() == make_loaded("reverse").snapshot()

    def test_label_kwarg_order_is_canonicalised(self):
        a = MetricsRegistry()
        a.counter("c_total", labels=("x", "y")).inc(x="1", y="2")
        b = MetricsRegistry()
        b.counter("c_total", labels=("x", "y")).inc(y="2", x="1")
        assert a.snapshot() == b.snapshot()

    def test_volatile_excluded_from_deterministic_view(self):
        reg = MetricsRegistry()
        reg.counter("keep_total").inc()
        reg.counter("drop_total", volatile=True).inc()
        names = [m["name"] for m in reg.snapshot(volatile=False)["metrics"]]
        assert names == ["keep_total"]
        names = [m["name"] for m in reg.snapshot()["metrics"]]
        assert names == ["drop_total", "keep_total"]

    def test_pickle_round_trip(self):
        reg = make_loaded()
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()
        # The clone is live, not a frozen copy.
        clone.counter("c_total", labels=("op",)).inc(op="put")
        assert clone.get("c_total").value(op="put") == 3


class TestMergeAlgebra:
    def regs(self):
        a = MetricsRegistry()
        a.counter("c_total").inc(1)
        a.histogram("h", buckets=(1, 10)).observe(0)
        a.gauge("peak", merge_mode="max").set(3)
        b = MetricsRegistry()
        b.counter("c_total").inc(10)
        b.histogram("h", buckets=(1, 10)).observe(5)
        b.gauge("peak", merge_mode="max").set(9)
        c = MetricsRegistry()
        c.counter("c_total").inc(100)
        c.histogram("h", buckets=(1, 10)).observe(50)
        c.gauge("peak", merge_mode="max").set(6)
        return a, b, c

    def fold(self, *regs) -> dict:
        acc = MetricsRegistry()
        for reg in regs:
            acc.merge(reg)
        return acc.snapshot()

    def test_merge_is_order_insensitive(self):
        a, b, c = self.regs()
        assert self.fold(a, b, c) == self.fold(c, b, a) == self.fold(b, a, c)

    def test_merge_is_associative(self):
        a, b, c = self.regs()
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        right = MetricsRegistry()
        right.merge(b)
        right.merge(c)
        ab_c = MetricsRegistry()
        ab_c.merge(left)
        ab_c.merge(c)
        a_bc = MetricsRegistry()
        a_bc.merge(a)
        a_bc.merge(right)
        assert ab_c.snapshot() == a_bc.snapshot()

    def test_merge_folds_every_field(self):
        a, b, c = self.regs()
        acc = MetricsRegistry()
        for reg in (a, b, c):
            acc.merge(reg)
        assert acc.get("c_total").total() == 111
        assert acc.get("peak").value() == 9  # max mode
        h = acc.get("h")
        assert h.count_of() == 3
        assert h.sum_of() == 55
        assert h.min_of() == 0 and h.max_of() == 50

    def test_merge_schema_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("m")
        b = MetricsRegistry()
        b.gauge("m")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_disjoint_label_sets_unions_children(self):
        """Per-site snapshots label their series by site; merging two
        sites with no label overlap must keep every child intact."""
        a = MetricsRegistry()
        a.counter("checks_total", labels=("site",)).inc(3, site="s0")
        a.histogram("lag", labels=("site",), buckets=(1, 10)).observe(
            2, site="s0"
        )
        b = MetricsRegistry()
        b.counter("checks_total", labels=("site",)).inc(5, site="s1")
        b.histogram("lag", labels=("site",), buckets=(1, 10)).observe(
            7, site="s1"
        )
        acc = MetricsRegistry()
        acc.merge(a)
        acc.merge(b)
        checks = acc.get("checks_total")
        assert checks.value(site="s0") == 3
        assert checks.value(site="s1") == 5
        assert checks.total() == 8
        lag = acc.get("lag")
        assert lag.count_of(site="s0") == 1 and lag.sum_of(site="s0") == 2
        assert lag.count_of(site="s1") == 1 and lag.sum_of(site="s1") == 7
        # The union survives a snapshot round-trip order-insensitively.
        acc2 = MetricsRegistry()
        acc2.merge(b)
        acc2.merge(a)
        assert acc.snapshot() == acc2.snapshot()

    def test_merge_null_is_identity(self):
        a = MetricsRegistry()
        a.counter("c_total").inc()
        before = a.snapshot()
        a.merge(NULL_REGISTRY)
        assert a.snapshot() == before


class TestNullRegistry:
    def test_singleton_and_disabled(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_instruments_are_inert(self):
        c = NULL_REGISTRY.counter("c_total", labels=("op",))
        c.inc(5, op="x")
        c.labels(op="x").inc()
        NULL_REGISTRY.gauge("g").set(3)
        NULL_REGISTRY.histogram("h").observe(1)
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.snapshot() == {"v": 1, "metrics": []}
        assert c.total() == 0
        assert c.per_label() == {}
