"""The telemetry endpoint, exercised over real HTTP.

Spins up :class:`~repro.obs.server.MetricsHTTPServer` on an ephemeral
port with the demo deadlock scenario behind it — the acceptance path of
``python -m repro.obs serve`` — and scrapes ``/metrics`` and
``/healthz`` with a plain urllib client.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.export import parse_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.server import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsHTTPServer,
    build_demo_runtime,
    shutdown_demo,
)


def fetch(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type"), exc.read()


@pytest.fixture(scope="module")
def live_endpoint():
    """One deadlocked demo runtime served over HTTP for the module."""
    registry = MetricsRegistry()
    runtime, tasks = build_demo_runtime(registry, n_tasks=3, interval_s=0.02)
    deadline = time.monotonic() + 10
    while not runtime.reports and time.monotonic() < deadline:
        time.sleep(0.01)
    assert runtime.reports, "demo ring never deadlocked"
    with MetricsHTTPServer(registry, runtime, port=0) as server:
        yield server
    shutdown_demo(runtime, tasks)


class TestMetricsEndpoint:
    def test_prometheus_content_type(self, live_endpoint):
        status, ctype, _ = fetch(live_endpoint.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE

    def test_exposition_parses_and_carries_runtime_series(self, live_endpoint):
        _, _, body = fetch(live_endpoint.url + "/metrics")
        families = parse_prometheus(body.decode("utf-8"))
        blocked = families["repro_blocked_tasks"]
        assert blocked["type"] == "gauge"
        assert blocked["samples"][("repro_blocked_tasks", ())] == 3
        checks = families["repro_checks_total"]
        assert sum(checks["samples"].values()) >= 1
        reports = families["repro_deadlock_reports_total"]
        key = ("repro_deadlock_reports_total", (("origin", "detection"),))
        assert reports["samples"][key] >= 1

    def test_check_latency_histogram_present(self, live_endpoint):
        _, _, body = fetch(live_endpoint.url + "/metrics")
        families = parse_prometheus(body.decode("utf-8"))
        latency = families["repro_check_duration_seconds"]
        assert latency["type"] == "histogram"
        count_key = ("repro_check_duration_seconds_count", ())
        assert latency["samples"][count_key] >= 1


class TestHealthEndpoint:
    def test_deadlocked_runtime_reports_503(self, live_endpoint):
        status, ctype, body = fetch(live_endpoint.url + "/healthz")
        assert status == 503
        assert ctype.startswith("application/json")
        doc = json.loads(body)
        assert doc["status"] == "deadlock"
        assert doc["mode"] == "detection"
        assert doc["blocked_tasks"] == 3
        assert doc["reports"] and doc["reports"][0]["tasks"]

    def test_repeat_detections_fold_into_one_entry(self, live_endpoint):
        """The monitor re-reports an un-cancelled cycle every poll; the
        document must not grow with uptime."""
        runtime = live_endpoint.runtime
        deadline = time.monotonic() + 10
        while len(runtime.reports) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(runtime.reports) >= 3
        _, _, body = fetch(live_endpoint.url + "/healthz")
        doc = json.loads(body)
        assert len(doc["reports"]) == 1
        assert doc["report_count"] >= 3

    def test_index_and_404(self, live_endpoint):
        status, _, body = fetch(live_endpoint.url + "/")
        assert status == 200 and b"/metrics" in body
        status, _, _ = fetch(live_endpoint.url + "/nope")
        assert status == 404


class TestHealthyServer:
    def test_registry_only_server_is_ok(self):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total").inc()
        with MetricsHTTPServer(registry, runtime=None, port=0) as server:
            status, _, body = fetch(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            status, _, body = fetch(server.url + "/metrics")
            assert status == 200
            assert "repro_demo_total 1" in body.decode("utf-8")


class TestSpansEndpoint:
    def test_spans_serve_chrome_trace_json(self):
        from repro.obs.tracing import Tracer, validate_chrome_trace

        registry = MetricsRegistry()
        tracer = Tracer()
        tracer.begin("task.blocked", "task:t1", key="t1")
        tracer.end("t1")
        with MetricsHTTPServer(
            registry, runtime=None, port=0, tracer=tracer
        ) as server:
            status, ctype, body = fetch(server.url + "/spans")
            assert status == 200
            assert ctype.startswith("application/json")
            doc = json.loads(body)
            validate_chrome_trace(doc)
            names = {e["name"] for e in doc["traceEvents"]}
            assert "task.blocked" in names
            status, _, index = fetch(server.url + "/")
            assert status == 200 and b"/spans" in index

    def test_spans_without_tracer_serves_empty_doc(self):
        from repro.obs.tracing import validate_chrome_trace

        registry = MetricsRegistry()
        with MetricsHTTPServer(registry, runtime=None, port=0) as server:
            status, _, body = fetch(server.url + "/spans")
            assert status == 200
            doc = json.loads(body)
            validate_chrome_trace(doc)


class TestServeRestart:
    """Regression: a restarted serve on the same port must bind cleanly.

    Without SO_REUSEADDR + clean shutdown the second cycle dies with
    EADDRINUSE while the first socket sits in TIME_WAIT."""

    def test_back_to_back_serve_cycles_on_one_port(self):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total").inc()
        # Let the OS pick a free port, then reuse that exact port for
        # every subsequent cycle — the restart scenario.
        probe = MetricsHTTPServer(registry, runtime=None, port=0)
        port = probe.server_address[1]
        probe.start()
        status, _, _ = fetch(probe.url + "/metrics")
        assert status == 200
        probe.stop()
        for _ in range(3):
            server = MetricsHTTPServer(registry, runtime=None, port=port)
            server.start()
            try:
                status, _, body = fetch(server.url + "/metrics")
                assert status == 200
                assert "repro_demo_total 1" in body.decode("utf-8")
            finally:
                server.stop()

    def test_stop_is_idempotent(self):
        registry = MetricsRegistry()
        server = MetricsHTTPServer(registry, runtime=None, port=0)
        server.start()
        server.stop()
        server.stop()  # second call must be a no-op, not a hang/raise

    def test_stop_without_start(self):
        registry = MetricsRegistry()
        server = MetricsHTTPServer(registry, runtime=None, port=0)
        server.stop()  # never served: still closes the socket cleanly


class TestShutdownVisibility:
    """Regressions for the shutdown/liveness sweep: ``shutdown_demo``
    reports a clean/dirty flag instead of swallowing everything, and a
    ring worker whose start gate never opens fails loudly."""

    def test_clean_shutdown_returns_true(self):
        registry = MetricsRegistry()
        runtime, tasks = build_demo_runtime(
            registry, n_tasks=2, interval_s=0.02
        )
        deadline = time.monotonic() + 10
        while not runtime.reports and time.monotonic() < deadline:
            time.sleep(0.01)
        assert runtime.reports
        assert shutdown_demo(runtime, tasks) is True

    def test_wedged_task_makes_shutdown_dirty(self):
        import threading

        registry = MetricsRegistry()
        runtime, tasks = build_demo_runtime(
            registry, n_tasks=2, interval_s=0.02
        )
        release = threading.Event()
        wedged = runtime.spawn(release.wait, name="wedged")
        try:
            deadline = time.monotonic() + 10
            while not runtime.reports and time.monotonic() < deadline:
                time.sleep(0.01)
            # The wedged extra task ignores cancellation: the join times
            # out, and the dirty flag says so instead of silence.
            assert shutdown_demo(
                runtime, tasks + [wedged], join_timeout_s=0.1
            ) is False
        finally:
            release.set()
            wedged.join(5)

    def test_failed_task_makes_shutdown_dirty(self):
        registry = MetricsRegistry()
        runtime, tasks = build_demo_runtime(
            registry, n_tasks=2, interval_s=0.02
        )

        def boom():
            raise RuntimeError("synthetic demo-task failure")

        failed = runtime.spawn(boom, name="failing")
        deadline = time.monotonic() + 10
        while not runtime.reports and time.monotonic() < deadline:
            time.sleep(0.01)
        assert shutdown_demo(runtime, tasks + [failed]) is False

    def test_ring_worker_fails_loudly_when_gate_never_opens(self, monkeypatch):
        """A timed-out start gate must fail the task (visible through
        join and the dirty shutdown flag), not silently run a different
        scenario."""
        import threading
        from types import SimpleNamespace

        from repro.obs import server as server_mod
        from repro.runtime.tasks import TaskFailedError

        class NeverOpeningGate(threading.Event):
            def set(self):  # the scenario's gate.set() is lost
                pass

        monkeypatch.setattr(server_mod, "DEMO_GATE_TIMEOUT_S", 0.05)
        monkeypatch.setattr(
            server_mod, "threading",
            SimpleNamespace(Event=NeverOpeningGate),
        )
        registry = MetricsRegistry()
        runtime, tasks = build_demo_runtime(
            registry, n_tasks=2, interval_s=0.02
        )
        with pytest.raises(TaskFailedError, match="start gate"):
            for task in tasks:
                task.join(10)
        assert shutdown_demo(runtime, tasks) is False


class TestConcurrentScrapes:
    def test_parallel_metrics_and_healthz_under_mutation(self, live_endpoint):
        """Several scrapers hitting both routes while the demo runtime
        keeps mutating the registry: every response parses."""
        import concurrent.futures

        def scrape(i: int):
            route = "/metrics" if i % 2 == 0 else "/healthz"
            status, _, body = fetch(live_endpoint.url + route)
            if route == "/metrics":
                assert status == 200
                parse_prometheus(body.decode("utf-8"))
            else:
                assert status in (200, 503)
                json.loads(body)
            return status

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            statuses = list(pool.map(scrape, range(32)))
        assert len(statuses) == 32
