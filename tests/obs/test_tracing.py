"""Causal tracing: deterministic IDs, span buffers, provenance, exports.

Pins the tentpole contracts of :mod:`repro.obs.tracing`:

* span IDs derive from trace-event ordinals via BLAKE2b — identical
  across processes and ``PYTHONHASHSEED``, never ``hash()``;
* replay-attached provenance maps every cycle edge to real record
  offsets, and both replay engines attach it identically;
* the Chrome trace-event export passes its own schema validation and
  is a pure function of the spans;
* the live path (runtime → site → store → checker) emits spans on an
  enabled tracer and stays silent on :data:`NULL_TRACER`.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    OriginTracker,
    TraceSpan,
    Tracer,
    attach_provenance,
    chrome_trace_from_records,
    render_chrome_json,
    render_report_provenance,
    span_id,
    spans_to_chrome,
    validate_chrome_trace,
)
from repro.trace.corpus import ScenarioSpec, scenario_trace
from repro.trace.replay import AVOIDANCE, DETECTION, replay


class TestSpanId:
    def test_deterministic_and_distinct(self):
        assert span_id("delta", "s0", "tok", 3) == span_id("delta", "s0", "tok", 3)
        assert span_id("delta", "s0", "tok", 3) != span_id("delta", "s0", "tok", 4)
        assert len(span_id("x")) == 16

    def test_stable_across_hash_seeds(self):
        """The reason span_id exists: hash() moves with PYTHONHASHSEED,
        BLAKE2b does not."""
        code = "from repro.obs.tracing import span_id; print(span_id('a', 1, 'b'))"
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
            ).stdout.strip()
            for seed in ("0", "1", "424242")
        }
        assert len(outs) == 1
        assert outs == {span_id("a", 1, "b")}

    def test_separator_prevents_part_gluing(self):
        assert span_id("ab", "c") != span_id("a", "bc")


class TestTracer:
    def test_event_begin_end_complete(self):
        tracer = Tracer()
        tracer.event("e", "track", ordinal=5, answer=42)
        tracer.begin("s", "track", key="k", ordinal=7)
        tracer.end("k", ordinal=9, outcome="ok")
        tracer.complete("c", "track", 10, ordinal=12)
        spans = tracer.spans()
        assert [s.name for s in spans] == ["e", "s", "c"]
        event, span, comp = spans
        assert event.instant and dict(event.args)["answer"] == 42
        assert (span.start, span.end) == (7, 9)
        assert dict(span.args)["outcome"] == "ok"
        assert (comp.start, comp.end) == (10, 12)

    def test_end_without_begin_is_noop(self):
        tracer = Tracer()
        tracer.end("never-opened")
        assert len(tracer) == 0

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(maxlen=3)
        for i in range(5):
            tracer.event(f"e{i}", "t", ordinal=i)
        assert [s.name for s in tracer.spans()] == ["e2", "e3", "e4"]

    def test_live_ordinals_are_monotonic(self):
        tracer = Tracer()
        tracer.event("a", "t")
        tracer.event("b", "t")
        a, b = tracer.spans()
        assert a.start < b.start

    def test_clear(self):
        tracer = Tracer()
        tracer.event("e", "t")
        tracer.begin("s", "t", key="k")
        tracer.clear()
        tracer.end("k")  # open table cleared too: nothing to close
        assert len(tracer) == 0

    def test_span_identity(self):
        span = TraceSpan("n", "t", 1, 4)
        assert span.id == span_id("n", "t", 1, 4)
        assert not span.instant
        assert TraceSpan("n", "t", 3, 3).instant


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.event("e", "t")
        NULL_TRACER.begin("s", "t", key="k")
        NULL_TRACER.end("k")
        NULL_TRACER.complete("c", "t", 0)
        assert NULL_TRACER.spans() == []
        assert isinstance(NULL_TRACER, NullTracer)

    def test_chrome_export_is_empty(self):
        doc = NULL_TRACER.to_chrome()
        validate_chrome_trace(doc)
        assert doc["traceEvents"] == []


class TestOriginTracker:
    def test_block_unblock_fold(self):
        from repro.core.events import waiting_on
        from repro.trace import events as ev

        tracker = OriginTracker()
        tracker.observe(ev.block(0, "t1", waiting_on("p", 1, p=1)))
        assert tracker.origins["t1"].ordinal == 0
        assert tracker.origins["t1"].kind == "block"
        tracker.observe(ev.unblock(1, "t1"))
        assert "t1" not in tracker.origins
        assert tracker.last_ordinal == 1

    def test_publish_delta_fold_carries_site_stream_seq(self):
        from repro.core.events import waiting_on
        from repro.distributed.delta import DeltaPublisher, encode_bucket
        from repro.trace import events as ev

        pub = DeltaPublisher("s0", stream="tok", adaptive=False)
        obj = pub.prepare(encode_bucket({"t1": waiting_on("p", 1, p=1)}))
        pub.commit(obj)
        tracker = OriginTracker()
        tracker.observe(ev.publish_delta(4, "s0", obj))
        origin = tracker.origins["t1"]
        assert (origin.ordinal, origin.kind) == (4, "publish_delta")
        assert (origin.site, origin.stream, origin.seq) == ("s0", "tok", 1)
        assert origin.describe() == (
            "publish_delta @record 4 (site s0, stream tok, seq 1)"
        )


class TestProvenance:
    def deadlock_outcome(self, **kwargs):
        trace = scenario_trace(ScenarioSpec(cycle_len=3, fan_out=2, sites=1))
        return trace, replay(trace, mode=DETECTION, **kwargs)

    def test_every_edge_resolves_to_a_real_record(self):
        trace, outcome = self.deadlock_outcome()
        report = outcome.reports[0]
        assert report.provenance
        # Reported at the check that first saw the cycle — at or before
        # the trace's end, never before the record that closed it.
        assert report.detected_at <= trace.records[-1].seq
        by_seq = {rec.seq: rec for rec in trace}
        for edge in report.provenance:
            for origin in (edge.source_origin, edge.target_origin):
                rec = by_seq[origin.ordinal]  # a real record offset
                assert rec.kind.value == origin.kind

    def test_engines_attach_identical_provenance(self):
        trace, scratch = self.deadlock_outcome()
        incremental = replay(trace, mode=DETECTION, incremental=True)
        assert scratch.reports == incremental.reports
        assert scratch.reports[0].provenance

    def test_detection_lag_counts_records_past_the_close(self):
        trace, outcome = self.deadlock_outcome(check_every=100)
        report = outcome.reports[0]
        # The drain check runs at the last record; the cycle closed at
        # the last contributing block — lag is their ordinal distance.
        closing = report.detected_at - report.detection_lag
        assert closing <= report.detected_at == trace.records[-1].seq
        assert report.detection_lag >= 0

    def test_avoidance_refusal_gets_provenance_too(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=1))
        outcome = replay(trace, mode=AVOIDANCE)
        report = outcome.reports[0]
        assert report.avoided and report.provenance
        assert report.detection_lag == 0  # refused at the closing record

    def test_lag_histogram_lands_in_metrics(self):
        _, outcome = self.deadlock_outcome()
        lag = outcome.metrics.get("repro_detection_lag_records")
        assert lag.count_of() == 1
        assert not lag.volatile  # part of the deterministic snapshot
        seconds = outcome.metrics.get("repro_detection_lag_seconds")
        assert seconds.volatile and seconds.count_of() == 1

    def test_attach_provenance_direct(self):
        from repro.core.events import waiting_on
        from repro.core.report import DeadlockReport
        from repro.core.selection import GraphModel
        from repro.trace import events as ev

        tracker = OriginTracker()
        s1, s2 = waiting_on("p", 1, p=1, q=0), waiting_on("q", 1, q=1, p=0)
        tracker.observe(ev.block(3, "a", s1))
        tracker.observe(ev.block(9, "b", s2))
        report = DeadlockReport(
            tasks=("a", "b"), events=(), cycle=("a", "b", "a"),
            model_used=GraphModel.WFG, edge_count=2,
        )
        enriched, lag_s = attach_provenance(
            report, tracker, {"a": s1, "b": s2}
        )
        assert enriched.detected_at == 9 and enriched.detection_lag == 0
        assert lag_s >= 0.0
        assert [e.source_origin.ordinal for e in enriched.provenance] == [3, 9]


class TestChromeExport:
    def test_spans_to_chrome_is_deterministic_and_valid(self):
        spans = [
            TraceSpan("b", "t2", 4, 4),
            TraceSpan("a", "t1", 1, 5, args=(("k", "v"),)),
        ]
        doc = spans_to_chrome(spans)
        validate_chrome_trace(doc)
        assert doc == spans_to_chrome(list(reversed(spans)))
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases == ["M", "M", "X", "i"]  # metadata, span, instant
        assert render_chrome_json(doc) == render_chrome_json(doc)

    def test_chrome_from_records_covers_blocks_publishes_reports(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=2))
        outcome = replay(trace, mode=DETECTION)
        doc = chrome_trace_from_records(trace, outcome.reports)
        validate_chrome_trace(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "site.publish_delta" in names
        assert "deadlock.report" in names
        report_events = [
            e for e in doc["traceEvents"] if e["name"] == "deadlock.report"
        ]
        assert report_events[0]["args"]["detection_lag_records"] >= 0

    @pytest.mark.parametrize("bad", [
        None,
        {"traceEvents": "nope"},
        {"traceEvents": [{"ph": "X"}]},                      # missing fields
        {"traceEvents": [{"name": "e", "ph": "Z", "pid": 1, "tid": 1}]},
        {"traceEvents": [{"name": "e", "ph": "X", "pid": 1, "tid": 1,
                          "ts": -1}]},
        {"traceEvents": [{"name": "e", "ph": "X", "pid": 1, "tid": 1,
                          "ts": 0}]},                         # X without dur
        {"traceEvents": [{"name": "e", "ph": "i", "pid": 1, "tid": 1,
                          "ts": 0}]},                         # i without scope
    ])
    def test_validation_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


class TestWaterfall:
    def test_render_contains_edges_lag_and_bars(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=3, fan_out=1, sites=1))
        outcome = replay(trace, mode=DETECTION)
        text = render_report_provenance(outcome.reports[0], 1)
        assert text.startswith("report 1: barrier deadlock detected")
        assert "detection lag" in text
        assert "waterfall (records" in text
        assert "|=" in text or "|." in text
        # Deterministic: same report renders to the same bytes.
        assert text == render_report_provenance(outcome.reports[0], 1)

    def test_unenriched_report_renders_placeholder(self):
        from repro.core.report import DeadlockReport
        from repro.core.selection import GraphModel

        bare = DeadlockReport(
            tasks=("a",), events=(), cycle=("a", "a"),
            model_used=GraphModel.WFG, edge_count=1,
        )
        assert "provenance: not attached" in render_report_provenance(bare, 1)


class TestLivePropagation:
    def test_runtime_hooks_span_blocks(self, runtime_factory):
        import threading

        from repro.runtime.phaser import Phaser

        tracer = Tracer()
        runtime = runtime_factory("detection", tracer=tracer)
        ph = Phaser(runtime, register_self=True, name="p")
        task = runtime.spawn(
            lambda: ph.arrive_and_await_advance(), register=[ph], name="w"
        )
        deadline = threading.Event()
        for _ in range(2000):
            if any(s.name == "task.blocked" for s in tracer.spans()):
                break
            deadline.wait(0.002)
        ph.arrive_and_deregister()
        task.join(5)
        blocked = [s for s in tracer.spans() if s.name == "task.blocked"]
        assert blocked and blocked[0].track.startswith("task:")

    def test_site_emits_publish_store_sync_spans(self):
        from repro.distributed.site import Site
        from repro.distributed.store import InMemoryStore

        tracer = Tracer()
        store = InMemoryStore(tracer=tracer)
        site = Site("s0", store, tracer=tracer)
        assert site.publisher.carry_trace  # wire context rides along
        site.poll_detection()
        names = {s.name for s in tracer.spans()}
        assert {"site.publish", "store.append", "checker.sync",
                "site.check"} <= names
        append = next(s for s in tracer.spans() if s.name == "store.append")
        args = dict(append.args)
        assert args["site"] == "s0" and "span" in args  # the wire context

    def test_replica_heal_emits_event(self):
        from repro.core.events import waiting_on
        from repro.distributed.delta import DeltaPublisher, encode_bucket
        from repro.distributed.store import InMemoryStore, ReplicatedStore

        tracer = Tracer()
        r1, r2 = InMemoryStore(name="r1"), InMemoryStore(name="r2")
        rs = ReplicatedStore([r1, r2], tracer=tracer)
        pub = DeltaPublisher("site-a", checkpoint_every=100, adaptive=False)
        delta = pub.prepare(encode_bucket({}))
        rs.append_delta("site-a", delta)
        pub.commit(delta)
        # r1 misses a write, comes back stale; the next write heals it.
        r1.set_available(False)
        delta = pub.prepare(encode_bucket({"t1": waiting_on("e", 1, e=1)}))
        rs.append_delta("site-a", delta)
        pub.commit(delta)
        r1.set_available(True)
        delta = pub.prepare(encode_bucket({}))
        rs.append_delta("site-a", delta)
        pub.commit(delta)
        heals = [s for s in tracer.spans() if s.name == "replica.heal"]
        assert heals and dict(heals[0].args)["trigger"] == "write"

    def test_null_tracer_keeps_live_paths_silent(self):
        from repro.distributed.site import Site
        from repro.distributed.store import InMemoryStore

        site = Site("s0", InMemoryStore())
        assert not site.publisher.carry_trace
        site.poll_detection()
        assert site.tracer is NULL_TRACER and len(NULL_TRACER) == 0


class TestOpenSpansInChrome:
    """Begun-but-unfinished spans must surface in the Chrome export:
    a deadlocked runtime's tasks are blocked *right now*, and an
    export that only showed closed spans would render a deadlock as
    an empty document."""

    def test_open_span_becomes_begin_event(self):
        tracer = Tracer()
        tracer.begin("task.blocked", "task:t1", key="t1", waits="p#1")
        doc = tracer.to_chrome()
        validate_chrome_trace(doc)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        assert len(begins) == 1
        assert begins[0]["name"] == "task.blocked"
        assert begins[0]["args"]["waits"] == "p#1"
        assert tracer.spans() == []  # the span is still open

    def test_ended_span_leaves_the_open_set(self):
        tracer = Tracer()
        tracer.begin("task.blocked", "task:t1", key="t1")
        tracer.end("t1")
        doc = tracer.to_chrome()
        assert [e["ph"] for e in doc["traceEvents"] if e["ph"] != "M"] == ["X"]

    def test_open_span_on_fresh_track_gets_a_tid(self):
        tracer = Tracer()
        tracer.event("store.append", "store:s", site="s0")
        tracer.begin("task.blocked", "task:t9", key="t9")
        doc = tracer.to_chrome()
        validate_chrome_trace(doc)
        meta = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert meta == {"store:s", "task:t9"}
