"""Cross-layer wiring: every subsystem's instruments land in one registry.

These tests hand a single enabled :class:`MetricsRegistry` to each layer
— checker, incremental checker, runtime, store, replicated store,
distributed checker, replay engines — and assert the advertised series
appear with the right values, that the legacy accounting surfaces
(``CheckStats``, ``store.puts``) are live views over the same storage,
and that enabling metrics never changes a replay's reports.
"""

from __future__ import annotations

import pytest

from repro.core.checker import CheckStats, DeadlockChecker
from repro.core.events import waiting_on
from repro.core.incremental import IncrementalChecker
from repro.core.selection import GraphModel
from repro.distributed.delta import DeltaPublisher, encode_bucket
from repro.distributed.detector import DistributedChecker
from repro.distributed.store import InMemoryStore, ReplicatedStore
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


def deadlock_example(checker) -> None:
    """Example 4.1: three producers and a consumer, wedged."""
    for i in (1, 2, 3):
        checker.set_blocked(f"t{i}", waiting_on("pc", 1, pc=1, pb=0))
    checker.set_blocked("t4", waiting_on("pb", 1, pc=0, pb=1))


class TestCheckerWiring:
    def test_check_instruments_bind_into_passed_registry(self):
        reg = MetricsRegistry()
        checker = DeadlockChecker(metrics=reg)
        deadlock_example(checker)
        assert checker.check() is not None
        assert reg.get("repro_checks_total").total() == 1
        assert reg.get("repro_check_cycles_found_total").total() == 1
        assert reg.get("repro_check_edges").count_of() == 1

    def test_stats_view_reads_registry_storage(self):
        reg = MetricsRegistry()
        checker = DeadlockChecker(metrics=reg)
        deadlock_example(checker)
        checker.check()
        stats = checker.stats
        assert stats.metrics is reg
        assert stats.checks == 1
        assert stats.cycles_found == 1
        assert stats.edges_total == reg.get("repro_check_edges").sum_of()

    def test_stats_fallback_registry_when_none_passed(self):
        """CheckStats must keep working with no registry in sight."""
        checker = DeadlockChecker()
        deadlock_example(checker)
        checker.check()
        assert checker.stats.checks == 1
        assert checker.stats.metrics.enabled

    def test_latency_quantiles_derive_from_buckets(self):
        checker = DeadlockChecker()
        deadlock_example(checker)
        checker.check()
        stats = checker.stats
        assert stats.p50_latency_s > 0
        assert stats.p50_latency_s <= stats.p95_latency_s
        assert stats.max_latency_s <= stats.total_time_s

    def test_model_histogram_round_trips_through_labels(self):
        checker = DeadlockChecker(model=GraphModel.WFG)
        deadlock_example(checker)
        checker.check()
        assert checker.stats.model_histogram() == {GraphModel.WFG: 1}

    def test_merge_same_registry_does_not_double_count(self):
        reg = MetricsRegistry()
        a = DeadlockChecker(metrics=reg)
        b = DeadlockChecker(metrics=reg)
        deadlock_example(a)
        a.check()
        b.check()
        a.stats.merge(b.stats)  # shared storage: must be a no-op
        assert reg.get("repro_checks_total").total() == 2

    def test_merge_distinct_registries_folds(self):
        a = DeadlockChecker()
        b = DeadlockChecker()
        deadlock_example(a)
        a.check()
        b.check()
        stats = CheckStats()
        stats.merge(a.stats)
        stats.merge(b.stats)
        assert stats.checks == 2
        assert stats.cycles_found == 1


class TestIncrementalWiring:
    def test_delta_op_counters(self):
        reg = MetricsRegistry()
        checker = IncrementalChecker(metrics=reg)
        checker.set_blocked("t1", waiting_on("p", 1, p=1))
        checker.clear("t1")
        ops = reg.get("repro_incremental_delta_ops_total")
        assert ops.value(op="set_blocked") == 1
        assert ops.value(op="clear") == 1

    def test_scc_mirrors_sync_on_check_and_on_demand(self):
        reg = MetricsRegistry()
        checker = IncrementalChecker(model=GraphModel.WFG, metrics=reg)
        deadlock_example(checker)
        assert checker.check() is not None
        work = reg.get("repro_scc_work_total")
        assert work.volatile  # hash-seed-dependent: excluded from goldens
        synced = work.value(kind="pk_visits")
        assert synced == checker._scc.pk_visits
        checker.clear("t4")  # trailing delta, no check afterwards
        checker.sync_metrics()
        assert work.value(kind="pk_visits") == checker._scc.pk_visits

    def test_fallback_counter_on_cyclic_state(self):
        reg = MetricsRegistry()
        checker = IncrementalChecker(model=GraphModel.AUTO, metrics=reg)
        deadlock_example(checker)
        assert checker.check() is not None
        assert reg.get("repro_incremental_fallback_checks_total").total() >= 1


class TestRuntimeWiring:
    def test_blocked_gauge_and_hook_counters(self, runtime_factory):
        import threading

        reg = MetricsRegistry()
        runtime = runtime_factory("detection", metrics=reg)
        from repro.runtime.phaser import Phaser

        ph = Phaser(runtime, register_self=True, name="p")
        release = threading.Event()

        def worker():
            ph.arrive_and_await_advance()

        task = runtime.spawn(worker, register=[ph], name="w")
        deadline = threading.Event()
        for _ in range(2000):
            if reg.get("repro_blocked_tasks").value() == 1:
                break
            deadline.wait(0.002)
        assert reg.get("repro_blocked_tasks").value() == 1
        assert reg.get("repro_block_events_total").value(hook="entry") == 1
        ph.arrive_and_deregister()
        task.join(5)
        assert reg.get("repro_blocked_tasks").value() == 0
        assert reg.get("repro_block_events_total").value(hook="exit") == 1
        assert release is not None  # silence unused warnings

    def test_off_mode_records_nothing(self, runtime_factory):
        reg = MetricsRegistry()
        runtime = runtime_factory("off", metrics=reg)
        runtime.spawn(lambda: None).join(5)
        assert reg.get("repro_block_events_total").total() == 0

    def test_null_registry_default(self, runtime_factory):
        runtime = runtime_factory("detection")
        assert runtime.metrics is NULL_REGISTRY


class TestStoreWiring:
    def test_legacy_counters_are_views_over_instruments(self):
        reg = MetricsRegistry()
        store = InMemoryStore(name="s", track_bytes=True, metrics=reg)
        store.put("site-a", {"t1": {"e": 1}})
        store.get("site-a")
        assert store.puts == 1 and store.gets == 1
        ops = reg.get("repro_store_ops_total")
        assert ops.value(store="s", op="put") == 1
        assert ops.value(store="s", op="get") == 1
        traffic = reg.get("repro_store_bytes_total")
        assert traffic.value(store="s", direction="put") == store.bytes_put
        assert store.bytes_put > 0

    def test_default_store_accounting_still_works(self):
        store = InMemoryStore()
        store.put("site-a", {})
        assert store.puts == 1  # no registry passed: private fallback

    def test_append_kinds_and_gap_counters(self):
        from repro.distributed.delta import DeltaSequenceError

        reg = MetricsRegistry()
        store = InMemoryStore(name="s", metrics=reg)
        pub = DeltaPublisher("site-a", checkpoint_every=100)
        first = pub.prepare(encode_bucket({}))
        store.append_delta("site-a", first)
        pub.commit(first)
        appends = reg.get("repro_store_appends_total")
        assert appends.value(store="s", kind="snapshot") == 1
        with pytest.raises(DeltaSequenceError):
            store.get_deltas("site-a", 99, first["stream"])
        assert reg.get("repro_store_delta_gaps_total").value(store="s") == 1

    def test_replicated_store_failover_and_heal_counters(self):
        reg = MetricsRegistry()
        r1 = InMemoryStore(name="r1")
        r2 = InMemoryStore(name="r2")
        rs = ReplicatedStore([r1, r2], metrics=reg)
        # Fixed cadence: the heal-on-write path below needs an ordinary
        # delta to hit the stale replica (adaptive cadence would turn
        # the tiny-bucket clear into a checkpoint, which heals nothing).
        pub = DeltaPublisher("site-a", checkpoint_every=100, adaptive=False)
        delta = pub.prepare(encode_bucket({}))
        rs.append_delta("site-a", delta)
        pub.commit(delta)
        # r1 goes down: reads fail over to r2 and count the skip.
        r1.set_available(False)
        rs.get_state("site-a")
        assert reg.get("repro_replica_failovers_total").value(replica="r1") == 1
        # r1 misses a write, comes back stale; the next write heals it.
        delta = pub.prepare(encode_bucket({"t1": waiting_on("e", 1, e=1)}))
        rs.append_delta("site-a", delta)
        pub.commit(delta)
        r1.set_available(True)
        delta = pub.prepare(encode_bucket({}))
        rs.append_delta("site-a", delta)
        pub.commit(delta)
        heals = reg.get("repro_replica_heals_total")
        assert heals.value(replica="r1", trigger="write") == 1


class TestDistributedWiring:
    def test_sync_round_counters(self):
        reg = MetricsRegistry()
        store = InMemoryStore()
        pub = DeltaPublisher("site-a", checkpoint_every=100)
        delta = pub.prepare(encode_bucket({"t1": waiting_on("e", 1, e=1)}))
        store.append_delta("site-a", delta)
        pub.commit(delta)
        checker = DistributedChecker(store, metrics=reg)
        checker.check_global()
        syncs = reg.get("repro_distributed_sync_total")
        assert syncs.value(event="rounds") == 1
        assert syncs.value(event="deltas_applied") == 1
        assert reg.get("repro_distributed_sync_lag").count_of() == 1


class TestReplayWiring:
    def corpus_member(self):
        import pathlib

        return (
            pathlib.Path(__file__).parent.parent
            / "trace" / "corpus" / "cycle-L2-F1-S1-R1-dl.jsonl"
        )

    def test_result_metrics_carries_engine_and_checker_series(self):
        from repro.trace.replay import replay

        result = replay(self.corpus_member())
        reg = result.metrics
        records = reg.get("repro_replay_records_total")
        assert records.total() == result.records_processed
        assert reg.get("repro_replay_checks_total").total() == result.checks_run
        assert reg.get("repro_replay_reports_total").total() == len(result.reports)
        assert reg.get("repro_checks_total").total() == result.stats.checks

    def test_incremental_metrics_cover_both_checkers_once(self):
        from repro.trace.replay import replay

        plain = replay(self.corpus_member())
        incr = replay(self.corpus_member(), incremental=True)
        assert (
            incr.metrics.get("repro_checks_total").total()
            == incr.stats.checks
            == plain.stats.checks
        )

    def test_metrics_never_change_reports(self):
        """The differential pin: a null-registry replay and a default
        one produce byte-identical report text."""
        from repro.trace.replay import ReplayEngine
        from repro.trace.codec import load_trace

        trace = load_trace(self.corpus_member())
        quiet = ReplayEngine(metrics=NULL_REGISTRY).run(trace)
        loud = ReplayEngine().run(trace)
        assert [r.describe() for r in quiet.reports] == [
            r.describe() for r in loud.reports
        ]
        assert quiet.records_processed == loud.records_processed
        assert quiet.metrics is NULL_REGISTRY
