"""Ground-truth deadlock characterisation tests (Definitions 3.1/3.2)."""

from __future__ import annotations

from repro.core.events import Event
from repro.pl.deadlock import (
    awaiting_tasks,
    blocked_tasks,
    deadlocked_subset,
    is_deadlocked,
    is_totally_deadlocked,
    to_snapshot,
)
from repro.pl.phaser import Phaser
from repro.pl.state import State
from repro.pl.syntax import Await, Skip, seq


def example_41_state() -> State:
    """The deadlocked state (M1, T1) of Example 4.1."""
    return State(
        phasers={
            "pc": Phaser({"t1": 1, "t2": 1, "t3": 1, "t4": 0}),
            "pb": Phaser({"t1": 0, "t2": 0, "t3": 0, "t4": 1}),
        },
        tasks={
            "t1": seq(Await("pc"), Skip()),
            "t2": seq(Await("pc"), Skip()),
            "t3": seq(Await("pc"), Skip()),
            "t4": seq(Await("pb"), Skip()),
        },
    )


class TestTotallyDeadlocked:
    def test_example_41_is_totally_deadlocked(self):
        assert is_totally_deadlocked(example_41_state())

    def test_empty_task_map_is_not(self):
        assert not is_totally_deadlocked(State(phasers={}, tasks={}))

    def test_running_task_disqualifies(self):
        s = example_41_state().with_task("extra", seq(Skip()))
        assert not is_totally_deadlocked(s)
        # ... but the state is still *deadlocked* (Def. 3.2).
        assert is_deadlocked(s)

    def test_impeder_must_be_in_state(self):
        """A task awaiting an event impeded only by a task *outside* the
        map is not totally deadlocked."""
        s = State(
            phasers={"p": Phaser({"t": 1, "outsider": 0})},
            tasks={"t": seq(Await("p"))},
        )
        assert not is_totally_deadlocked(s)


class TestDeadlockedSubset:
    def test_example_41_full_subset(self):
        assert deadlocked_subset(example_41_state()) == {
            "t1",
            "t2",
            "t3",
            "t4",
        }

    def test_no_deadlock_empty_subset(self):
        s = State(
            phasers={"p": Phaser({"a": 1, "b": 0})},
            tasks={"a": seq(Await("p")), "b": seq(Skip())},
        )
        assert deadlocked_subset(s) == frozenset()
        assert not is_deadlocked(s)

    def test_terminated_impeder_is_starvation_not_deadlock(self):
        """The paper's Def 3.2 boundary: a terminated-but-registered
        member starves waiters without forming a deadlock."""
        s = State(
            phasers={"p": Phaser({"a": 1, "dead": 0})},
            tasks={"a": seq(Await("p")), "dead": ()},
        )
        assert blocked_tasks(s) == {"a"}  # blocked forever...
        assert not is_deadlocked(s)  # ...but not a circular wait

    def test_partial_subset(self):
        """Two deadlocked tasks plus an independent runnable one."""
        s = State(
            phasers={
                "x": Phaser({"a": 1, "b": 0}),
                "y": Phaser({"a": 0, "b": 1}),
            },
            tasks={
                "a": seq(Await("x")),
                "b": seq(Await("y")),
                "free": seq(Skip()),
            },
        )
        assert deadlocked_subset(s) == {"a", "b"}
        assert is_deadlocked(s)

    def test_gfp_prunes_chained_waiters(self):
        """A waiter hanging off a deadlocked core is pruned when its
        impeder is outside the core... unless the impeder is in the
        subset, in which case it stays."""
        s = State(
            phasers={
                "x": Phaser({"a": 1, "b": 0}),
                "y": Phaser({"a": 0, "b": 1}),
                "z": Phaser({"c": 1, "a": 0}),
            },
            tasks={
                "a": seq(Await("x")),
                "b": seq(Await("y")),
                "c": seq(Await("z")),  # impeded by a, which is in the core
            },
        )
        assert deadlocked_subset(s) == {"a", "b", "c"}


class TestBlockedAndAwaiting:
    def test_awaiting_requires_membership(self):
        s = State(
            phasers={"p": Phaser({"other": 0})},
            tasks={"t": seq(Await("p"))},
        )
        assert awaiting_tasks(s) == {}

    def test_blocked_excludes_satisfied_awaits(self):
        s = State(
            phasers={"p": Phaser({"a": 1, "b": 1})},
            tasks={"a": seq(Await("p")), "b": seq(Skip())},
        )
        assert blocked_tasks(s) == frozenset()


class TestToSnapshot:
    def test_example_41_roundtrip(self):
        snap = to_snapshot(example_41_state())
        assert set(snap.tasks) == {"t1", "t2", "t3", "t4"}
        assert snap.statuses["t1"].waits == frozenset({Event("pc", 1)})
        assert snap.statuses["t1"].registered == {"pc": 1, "pb": 0}
        assert snap.statuses["t4"].registered == {"pc": 0, "pb": 1}

    def test_only_blocked_filtering(self):
        s = State(
            phasers={"p": Phaser({"a": 1, "b": 1})},
            tasks={"a": seq(Await("p")), "b": seq(Await("p"))},
        )
        assert to_snapshot(s, only_blocked=True).is_empty()
        assert len(to_snapshot(s, only_blocked=False)) == 2
