"""Interpreter and exploration-engine tests."""

from __future__ import annotations

import pytest

from repro.core.checker import DeadlockChecker
from repro.pl.interpreter import Interpreter, explore
from repro.pl.programs import initial, running_example, spmd_rounds
from repro.pl.state import State
from repro.pl.syntax import Loop, Skip, seq


class TestDeterminism:
    def test_same_seed_same_run(self):
        program = initial(running_example(I=3, J=1))
        r1 = Interpreter(seed=42).run(program)
        r2 = Interpreter(seed=42).run(program)
        assert r1.steps == r2.steps
        assert r1.state.tasks == r2.state.tasks
        assert r1.deadlocked == r2.deadlocked

    def test_different_seeds_can_differ(self):
        program = initial(spmd_rounds(n=3, rounds=2))
        steps = {Interpreter(seed=s).run(program).steps for s in range(8)}
        assert len(steps) >= 1  # all must terminate regardless


class TestBudget:
    def test_unbounded_loop_exhausts_budget(self):
        program = State.initial(seq(Loop(body=seq(Skip()))))
        result = Interpreter(seed=0, unfold_bias=1.0, max_steps=500).run(program)
        assert result.exhausted
        assert result.steps == 500

    def test_low_bias_escapes_loops(self):
        program = State.initial(seq(Loop(body=seq(Skip()))))
        result = Interpreter(seed=0, unfold_bias=0.0, max_steps=500).run(program)
        assert result.finished


class TestCheckerIntegration:
    def test_checker_reports_on_deadlock(self):
        result = Interpreter(seed=7, checker=DeadlockChecker()).run(
            initial(running_example(I=3, J=1))
        )
        assert result.is_deadlocked
        assert result.reports
        report = result.reports[0]
        assert set(report.tasks) <= set(result.state.tasks)

    def test_checker_silent_on_clean_run(self):
        result = Interpreter(seed=7, checker=DeadlockChecker()).run(
            initial(spmd_rounds(n=3, rounds=2))
        )
        assert result.finished
        assert not result.reports

    def test_check_every_reduces_checks(self):
        checker_all = DeadlockChecker()
        Interpreter(seed=3, checker=checker_all, check_every=1).run(
            initial(spmd_rounds(n=2, rounds=1))
        )
        checker_sparse = DeadlockChecker()
        Interpreter(seed=3, checker=checker_sparse, check_every=10).run(
            initial(spmd_rounds(n=2, rounds=1))
        )
        assert checker_sparse.stats.checks < checker_all.stats.checks


class TestExplore:
    def test_visits_are_bounded(self):
        out = explore(initial(spmd_rounds(n=3, rounds=2)), max_states=20)
        assert out.truncated

    def test_loop_unfold_bound(self):
        program = State.initial(seq(Loop(body=seq(Skip()))))
        out = explore(program, max_loop_unfolds=3)
        assert not out.truncated
        assert out.finished  # e-loop exits exist at every depth

    def test_classification_is_exhaustive(self):
        out = explore(initial(spmd_rounds(n=2, rounds=1)))
        assert out.visited > 0
        assert out.finished and not out.deadlocked and not out.faulted
