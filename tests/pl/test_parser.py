"""Parser tests: round-trips with pretty(), Figure 3, error positions."""

from __future__ import annotations

import pytest

from repro.pl import programs
from repro.pl.parser import PLSyntaxError, parse
from repro.pl.syntax import (
    Adv,
    Await,
    Dereg,
    Fork,
    Loop,
    NewPhaser,
    NewTid,
    Reg,
    Skip,
    pretty,
    seq,
)


class TestBasics:
    def test_empty(self):
        assert parse("") == ()
        assert parse("   \n  // just a comment\n") == ()

    def test_skip(self):
        assert parse("skip;") == seq(Skip())

    def test_binders(self):
        assert parse("t = newTid();") == seq(NewTid("t"))
        assert parse("p = newPhaser();") == seq(NewPhaser("p"))

    def test_phaser_ops(self):
        assert parse("adv(p); await(p); dereg(p);") == seq(
            Adv("p"), Await("p"), Dereg("p")
        )

    def test_reg_is_phaser_first(self):
        # Figure 3 prints reg(pc, t): phaser, then task.
        assert parse("reg(pc, t);") == seq(Reg(task="t", phaser="pc"))

    def test_fork(self):
        out = parse("fork(t) skip; adv(p); end;")
        assert out == seq(Fork(task="t", body=seq(Skip(), Adv("p"))))

    def test_loop(self):
        out = parse("loop skip; end;")
        assert out == seq(Loop(body=seq(Skip())))

    def test_nested_blocks(self):
        out = parse("fork(t) loop skip; end; end;")
        assert out == seq(
            Fork(task="t", body=seq(Loop(body=seq(Skip()))))
        )

    def test_comments_and_whitespace(self):
        out = parse(
            """
            // the running example, truncated
            pc = newPhaser();   // cyclic barrier
            adv(pc);
            """
        )
        assert out == seq(NewPhaser("pc"), Adv("pc"))


class TestFigure3:
    def test_parses_the_paper_listing(self):
        source = """
        pc = newPhaser();
        pb = newPhaser();
        t = newTid();
        reg(pc, t); reg(pb, t);
        fork(t)
          loop
            skip;
            adv(pc); await(pc);
            skip;
            adv(pc); await(pc);
          end;
          dereg(pc);
          dereg(pb);
        end;
        adv(pb); await(pb);
        skip;
        """
        program = parse(source)
        assert isinstance(program[0], NewPhaser)
        fork = program[5]
        assert isinstance(fork, Fork)
        assert isinstance(fork.body[0], Loop)
        assert fork.body[-1] == Dereg("pb")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "program",
        [
            programs.running_example(I=2, J=1),
            programs.running_example_fixed(I=3, J=2),
            programs.two_barrier_cross(),
            programs.two_barrier_aligned(),
            programs.split_phase(),
            programs.spmd_rounds(),
            programs.fork_join(),
            programs.missing_participant(),
            programs.dynamic_membership(),
            programs.nested_fork_join(),
            programs.smallest_deadlock(),
        ],
        ids=lambda p: f"{len(p)}-instr",
    )
    def test_pretty_parse_roundtrip(self, program):
        assert parse(pretty(program)) == program

    def test_roundtrip_of_loops(self):
        program = seq(Loop(body=seq(Skip(), Loop(body=seq(Adv("p"))))))
        assert parse(pretty(program)) == program


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "skip",  # missing semicolon
            "t = newQueue();",  # unknown constructor
            "reg(p);",  # arity
            "fork(t) skip;",  # unterminated block
            "adv(p)",  # missing semicolon
            "= newTid();",  # missing binder name
            "adv(loop);",  # keyword where a name is expected
            "!",  # bad character
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(PLSyntaxError):
            parse(source)

    def test_error_carries_position(self):
        with pytest.raises(PLSyntaxError) as err:
            parse("skip;\nskip;\nadv(p)")
        assert err.value.line >= 3


class TestParsedProgramsRun:
    def test_parsed_figure3_deadlocks(self):
        from repro.pl.interpreter import Interpreter
        from repro.pl.state import State

        program = parse(pretty(programs.running_example(I=2, J=1)))
        result = Interpreter(seed=5).run(State.initial(program))
        assert result.is_deadlocked
