"""Phaser data-structure tests (Figure 4's Phasers block)."""

from __future__ import annotations

import pytest

from repro.pl.phaser import Phaser, PhaserError, await_holds


class TestOperations:
    def test_reg_adds_member(self):
        p = Phaser().reg("t", 0)
        assert p["t"] == 0

    def test_reg_premise_allows_equal_phase(self):
        p = Phaser({"a": 2}).reg("b", 2)
        assert p["b"] == 2

    def test_reg_premise_allows_past_phase(self):
        # exists t' with P(t') <= n: a at 1 <= 3.
        p = Phaser({"a": 1}).reg("b", 3)
        assert p["b"] == 3

    def test_reg_premise_rejects_future_only(self):
        """No member has phase <= n: the new member would wait for an
        event that already happened."""
        with pytest.raises(PhaserError):
            Phaser({"a": 5}).reg("b", 3)

    def test_reg_duplicate_rejected(self):
        with pytest.raises(PhaserError):
            Phaser({"t": 0}).reg("t", 0)

    def test_dereg(self):
        p = Phaser({"a": 1, "b": 2}).dereg("a")
        assert "a" not in p
        assert p["b"] == 2

    def test_dereg_non_member_rejected(self):
        with pytest.raises(PhaserError):
            Phaser().dereg("ghost")

    def test_adv_increments(self):
        p = Phaser({"t": 3}).adv("t")
        assert p["t"] == 4

    def test_adv_non_member_rejected(self):
        with pytest.raises(PhaserError):
            Phaser().adv("t")

    def test_operations_are_persistent(self):
        original = Phaser({"t": 0})
        advanced = original.adv("t")
        assert original["t"] == 0
        assert advanced["t"] == 1


class TestAwaitPredicate:
    def test_holds_when_all_at_or_above(self):
        assert await_holds(Phaser({"a": 2, "b": 3}), 2)

    def test_fails_when_any_below(self):
        assert not await_holds(Phaser({"a": 1, "b": 3}), 2)

    def test_vacuous_on_empty(self):
        assert await_holds(Phaser(), 99)

    def test_phase_zero_always_holds(self):
        assert await_holds(Phaser({"a": 0}), 0)


class TestMapping:
    def test_mapping_protocol(self):
        p = Phaser({"a": 1, "b": 2})
        assert len(p) == 2
        assert set(p) == {"a", "b"}
        assert p.phase_of("a") == 1
        assert p.phase_of("ghost") is None

    def test_equality_and_hash(self):
        assert Phaser({"a": 1}) == Phaser({"a": 1})
        assert hash(Phaser({"a": 1})) == hash(Phaser({"a": 1}))
        assert Phaser({"a": 1}) != Phaser({"a": 2})
