"""Program-library tests: expected outcome of every PL pattern.

Small instances are *model-checked* (every interleaving explored) so the
claims "deadlocks under some schedule" / "never deadlocks" are exact,
not sampled.
"""

from __future__ import annotations

import pytest

from repro.pl.interpreter import Interpreter, explore
from repro.pl.programs import (
    dynamic_membership,
    fork_join,
    initial,
    missing_participant,
    nested_fork_join,
    running_example,
    running_example_fixed,
    smallest_deadlock,
    split_phase,
    spmd_rounds,
    two_barrier_aligned,
    two_barrier_cross,
)


class TestRunningExample:
    def test_deadlocks_under_every_full_schedule(self):
        result = Interpreter(seed=0).run(initial(running_example(I=2, J=1)))
        assert result.is_deadlocked

    @pytest.mark.parametrize("seed", range(10))
    def test_deadlocks_for_many_seeds(self, seed: int):
        result = Interpreter(seed=seed).run(initial(running_example(I=3, J=1)))
        assert result.is_deadlocked
        assert not result.finished

    @pytest.mark.parametrize("seed", range(10))
    def test_fixed_version_terminates(self, seed: int):
        result = Interpreter(seed=seed).run(
            initial(running_example_fixed(I=3, J=2))
        )
        assert result.finished
        assert not result.is_deadlocked

    def test_exploration_finds_no_escape(self):
        """Model checking: *every* quiescent state of the buggy program
        is deadlocked; none is finished."""
        out = explore(initial(running_example(I=2, J=1)), max_loop_unfolds=0)
        assert out.deadlocked
        assert not out.finished
        assert not out.faulted

    def test_exploration_fixed_always_finishes(self):
        out = explore(initial(running_example_fixed(I=2, J=1)), max_loop_unfolds=0)
        assert out.finished
        assert not out.deadlocked
        assert not out.faulted


class TestCrossedBarriers:
    def test_cross_deadlocks(self):
        out = explore(initial(two_barrier_cross()))
        assert out.deadlocked
        assert not out.finished

    def test_aligned_never_deadlocks(self):
        out = explore(initial(two_barrier_aligned()))
        assert out.finished
        assert not out.deadlocked

    def test_smallest_deadlock(self):
        out = explore(initial(smallest_deadlock()))
        assert out.deadlocked
        assert not out.finished


class TestDeadlockFreePatterns:
    @pytest.mark.parametrize(
        "program",
        [
            split_phase(n=2, work_len=2),
            spmd_rounds(n=2, rounds=2),
            fork_join(n=3),
            dynamic_membership(n=3),
            nested_fork_join(width=2),
        ],
        ids=["split-phase", "spmd", "fork-join", "dyn-membership", "nested"],
    )
    def test_explored_deadlock_free(self, program):
        out = explore(initial(program), max_states=200_000)
        assert not out.deadlocked
        assert not out.faulted
        assert out.finished
        assert not out.truncated

    @pytest.mark.parametrize("seed", range(5))
    def test_larger_instances_run_clean(self, seed: int):
        for program in (
            split_phase(n=4, work_len=3),
            spmd_rounds(n=4, rounds=3),
            fork_join(n=5),
            dynamic_membership(n=4),
            nested_fork_join(width=3),
        ):
            result = Interpreter(seed=seed).run(initial(program))
            assert result.finished, program


class TestStarvationBoundary:
    def test_missing_participant_starves_but_no_deadlock(self):
        result = Interpreter(seed=1).run(initial(missing_participant(3)))
        assert not result.finished  # blocked forever
        assert not result.is_deadlocked  # yet not a Def-3.2 deadlock
