"""Operational-semantics tests: every rule of Figure 4 individually."""

from __future__ import annotations

import pytest

from repro.pl.phaser import Phaser, PhaserError
from repro.pl.semantics import (
    apply_step,
    enabled_steps,
    is_finished,
    is_stuck,
    step_task,
    task_steps,
)
from repro.pl.state import State
from repro.pl.syntax import (
    Adv,
    Await,
    Dereg,
    Fork,
    Loop,
    NewPhaser,
    NewTid,
    Reg,
    Skip,
    seq,
)


class TestSkipAndLoop:
    def test_skip(self):
        s = State.initial(seq(Skip(), Skip()))
        s2 = step_task(s, "main")
        assert s2.tasks["main"] == seq(Skip())

    def test_loop_offers_both_rules(self):
        s = State.initial(seq(Loop(body=seq(Skip()))))
        rules = {step.rule for step in task_steps(s, "main")}
        assert rules == {"i-loop", "e-loop"}

    def test_i_loop_unfolds(self):
        body = seq(Skip())
        s = State.initial(seq(Loop(body=body), Adv("p")))
        s2 = step_task(s, "main", rule="i-loop")
        assert s2.tasks["main"] == seq(Skip(), Loop(body=body), Adv("p"))

    def test_e_loop_exits(self):
        s = State.initial(seq(Loop(body=seq(Skip())), Skip()))
        s2 = step_task(s, "main", rule="e-loop")
        assert s2.tasks["main"] == seq(Skip())


class TestTaskRules:
    def test_new_t_binds_fresh_name(self):
        s = State.initial(seq(NewTid("x"), Fork(task="x", body=seq(Skip()))))
        s2 = step_task(s, "main")
        # A fresh idle task appeared...
        fresh = [t for t in s2.tasks if t != "main"]
        assert len(fresh) == 1
        assert s2.tasks[fresh[0]] == ()
        # ... and the continuation references it.
        fork = s2.tasks["main"][0]
        assert isinstance(fork, Fork)
        assert fork.task == fresh[0]

    def test_fork_requires_idle_target(self):
        s = State(
            phasers={},
            tasks={"main": seq(Fork(task="w", body=seq(Skip()))), "w": seq(Skip())},
        )
        assert task_steps(s, "main") == []  # w is not `end`

    def test_fork_starts_body(self):
        s = State(
            phasers={},
            tasks={"main": seq(Fork(task="w", body=seq(Skip()))), "w": ()},
        )
        s2 = step_task(s, "main")
        assert s2.tasks["w"] == seq(Skip())
        assert s2.tasks["main"] == ()


class TestPhaserRules:
    def test_new_ph_registers_creator_at_zero(self):
        s = State.initial(seq(NewPhaser("p"), Adv("p")))
        s2 = step_task(s, "main")
        (name,) = s2.phasers
        assert s2.phasers[name]["main"] == 0
        # The continuation references the fresh name.
        assert s2.tasks["main"] == seq(Adv(name))

    def test_reg_inherits_registrar_phase(self):
        s = State(
            phasers={"p": Phaser({"main": 2})},
            tasks={"main": seq(Reg(task="w", phaser="p"))},
        )
        s2 = step_task(s, "main")
        assert s2.phasers["p"]["w"] == 2

    def test_reg_requires_registrar_membership(self):
        s = State(
            phasers={"p": Phaser({"other": 0})},
            tasks={"main": seq(Reg(task="w", phaser="p"))},
        )
        assert task_steps(s, "main") == []

    def test_reg_of_existing_member_disabled(self):
        s = State(
            phasers={"p": Phaser({"main": 0, "w": 0})},
            tasks={"main": seq(Reg(task="w", phaser="p"))},
        )
        assert task_steps(s, "main") == []

    def test_dereg(self):
        s = State(
            phasers={"p": Phaser({"main": 0, "w": 0})},
            tasks={"main": seq(Dereg("p"))},
        )
        s2 = step_task(s, "main")
        assert "main" not in s2.phasers["p"]

    def test_adv(self):
        s = State(
            phasers={"p": Phaser({"main": 0})}, tasks={"main": seq(Adv("p"))}
        )
        s2 = step_task(s, "main")
        assert s2.phasers["p"]["main"] == 1

    def test_sync_enabled_iff_await_holds(self):
        blocked = State(
            phasers={"p": Phaser({"main": 1, "w": 0})},
            tasks={"main": seq(Await("p"))},
        )
        assert task_steps(blocked, "main") == []
        ready = State(
            phasers={"p": Phaser({"main": 1, "w": 1})},
            tasks={"main": seq(Await("p"))},
        )
        s2 = step_task(ready, "main")
        assert s2.tasks["main"] == ()

    def test_sync_unblocked_by_dereg(self):
        """Dynamic membership: the lagging member leaving lets the await
        fire — the scenario static-membership analyses cannot model."""
        s = State(
            phasers={"p": Phaser({"main": 1, "lagger": 0})},
            tasks={"main": seq(Await("p")), "lagger": seq(Dereg("p"))},
        )
        assert task_steps(s, "main") == []
        s2 = step_task(s, "lagger")
        assert task_steps(s2, "main") != []


class TestDrivers:
    def test_enabled_steps_unions_tasks(self):
        s = State(
            phasers={},
            tasks={"a": seq(Skip()), "b": seq(Skip()), "c": ()},
        )
        assert {step.task for step in enabled_steps(s)} == {"a", "b"}

    def test_step_task_on_stuck_raises(self):
        s = State(phasers={}, tasks={"main": ()})
        with pytest.raises(PhaserError):
            step_task(s, "main")

    def test_step_task_ambiguous_requires_rule(self):
        s = State.initial(seq(Loop(body=seq(Skip()))))
        with pytest.raises(PhaserError):
            step_task(s, "main")

    def test_is_stuck_and_finished(self):
        finished = State(phasers={}, tasks={"main": ()})
        assert is_finished(finished)
        assert not is_stuck(finished)
        stuck = State(
            phasers={"p": Phaser({"main": 1, "w": 0})},
            tasks={"main": seq(Await("p")), "w": ()},
        )
        assert is_stuck(stuck)
        assert not is_finished(stuck)

    def test_apply_step_validates_sync_premise(self):
        from repro.pl.semantics import Step

        s = State(
            phasers={"p": Phaser({"main": 1, "w": 0})},
            tasks={"main": seq(Await("p"))},
        )
        with pytest.raises(PhaserError):
            apply_step(s, Step("main", "sync"))
