"""PL syntax tests: sequence building, substitution, pretty-printing."""

from __future__ import annotations

import pytest

from repro.pl.syntax import (
    Adv,
    Await,
    Dereg,
    Fork,
    Loop,
    NewPhaser,
    NewTid,
    Reg,
    Skip,
    pretty,
    seq,
    substitute_seq,
)


class TestSeqBuilder:
    def test_flattens_nested_sequences(self):
        inner = seq(Adv("p"), Await("p"))
        outer = seq(Skip(), inner, Skip())
        assert len(outer) == 4

    def test_rejects_non_instructions(self):
        with pytest.raises(TypeError):
            seq("skip")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            seq((Skip(), "bad"))  # type: ignore[arg-type]

    def test_empty(self):
        assert seq() == ()


class TestSubstitution:
    def test_substitutes_phaser_references(self):
        s = seq(Adv("p"), Await("p"), Dereg("p"))
        out = substitute_seq(s, "p", "q0")
        assert out == seq(Adv("q0"), Await("q0"), Dereg("q0"))

    def test_substitutes_task_references(self):
        s = seq(Reg(task="t", phaser="p"), Fork(task="t", body=seq(Skip())))
        out = substitute_seq(s, "t", "t7")
        assert out[0] == Reg(task="t7", phaser="p")
        assert out[1] == Fork(task="t7", body=seq(Skip()))

    def test_substitution_enters_fork_bodies(self):
        s = seq(Fork(task="x", body=seq(Adv("p"))))
        out = substitute_seq(s, "p", "q")
        assert out[0].body == seq(Adv("q"))

    def test_substitution_enters_loop_bodies(self):
        s = seq(Loop(body=seq(Await("p"))))
        out = substitute_seq(s, "p", "q")
        assert out[0].body == seq(Await("q"))

    def test_stops_at_rebinding(self):
        """A newTid/newPhaser rebinding shadows the outer variable for
        the remainder of the sequence."""
        s = seq(Adv("p"), NewPhaser("p"), Adv("p"))
        out = substitute_seq(s, "p", "q")
        assert out[0] == Adv("q")  # before the binder: substituted
        assert out[2] == Adv("p")  # after the binder: untouched

    def test_task_var_shadowing(self):
        s = seq(Reg(task="t", phaser="p"), NewTid("t"), Reg(task="t", phaser="p"))
        out = substitute_seq(s, "t", "w")
        assert out[0].task == "w"
        assert out[2].task == "t"


class TestPretty:
    def test_renders_all_constructs(self):
        program = seq(
            NewPhaser("p"),
            NewTid("t"),
            Reg(task="t", phaser="p"),
            Fork(task="t", body=seq(Loop(body=seq(Skip(), Adv("p"), Await("p"))))),
            Dereg("p"),
        )
        text = pretty(program)
        for fragment in (
            "p = newPhaser()",
            "t = newTid()",
            "reg(p, t)",
            "fork(t)",
            "loop",
            "skip;",
            "adv(p);",
            "await(p);",
            "dereg(p);",
        ):
            assert fragment in text
