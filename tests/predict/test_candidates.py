"""Unit tests for interval extraction and candidate enumeration."""

from __future__ import annotations

import repro.trace.events as ev
from repro.core.events import waiting_on
from repro.predict.candidates import (
    BlockInterval,
    concurrent,
    enumerate_candidates,
    extract_intervals,
)
from repro.trace.corpus import NearMissSpec, build_trace


def w(phaser, phase, **registered):
    return waiting_on(phaser, phase, **registered)


def hit_trace(**kwargs):
    return build_trace(NearMissSpec(realisable=True, **kwargs))


def ctl_trace(**kwargs):
    return build_trace(NearMissSpec(realisable=False, **kwargs))


class TestConcurrent:
    def test_never_closed_intervals_are_concurrent(self):
        x = BlockInterval(task="a", status=w("p", 1, p=0), open_seq=0)
        y = BlockInterval(task="b", status=w("q", 1, q=0), open_seq=1)
        assert concurrent(x, y) and concurrent(y, x)

    def test_close_seen_by_other_open_orders_them(self):
        # y's block clock has seen a's component up to x's closing
        # tick: x closed before y opened, so they never overlap.
        x = BlockInterval(
            task="a", status=w("p", 1, p=0), open_seq=0,
            close_seq=1, close_tick=3,
        )
        y = BlockInterval(
            task="b", status=w("q", 1, q=0), open_seq=2,
            block_clock={"a": 3},
        )
        assert not concurrent(x, y)
        assert not concurrent(y, x)  # symmetric by construction

    def test_stale_clock_entry_keeps_them_concurrent(self):
        x = BlockInterval(
            task="a", status=w("p", 1, p=0), open_seq=0,
            close_seq=1, close_tick=3,
        )
        y = BlockInterval(
            task="b", status=w("q", 1, q=0), open_seq=2,
            block_clock={"a": 2},  # saw a, but before the close
        )
        assert concurrent(x, y)


class TestEnumeration:
    def test_hit_trace_yields_exactly_one_candidate(self):
        _, intervals = extract_intervals(hit_trace(chain_len=2))
        candidates, truncated = enumerate_candidates(intervals)
        assert not truncated
        assert len(candidates) == 1
        (candidate,) = candidates
        assert sorted(candidate.tasks) == ["t0", "t1"]

    def test_control_trace_yields_no_candidates(self):
        _, intervals = extract_intervals(ctl_trace(chain_len=2))
        candidates, truncated = enumerate_candidates(intervals)
        assert candidates == [] and not truncated

    def test_longer_chains_cycle_through_every_chain_task(self):
        _, intervals = extract_intervals(hit_trace(chain_len=4))
        candidates, _ = enumerate_candidates(intervals)
        assert len(candidates) == 1
        assert sorted(candidates[0].tasks) == ["t0", "t1", "t2", "t3"]

    def test_cycle_is_wait_for_closed(self):
        # Structural check of the emitted orientation: interval i's
        # wait is impeded by interval i+1's status, wrapping.
        _, intervals = extract_intervals(hit_trace(chain_len=3))
        (candidate,) = enumerate_candidates(intervals)[0]
        ivs = candidate.intervals
        for i, interval in enumerate(ivs):
            nxt = ivs[(i + 1) % len(ivs)]
            assert any(
                nxt.status.impedes(event) for event in interval.status.waits
            ), (interval.task, nxt.task)

    def test_enumeration_is_deterministic(self):
        trace = hit_trace(chain_len=3, sites=2)
        _, intervals = extract_intervals(trace)
        first = [c.key for c in enumerate_candidates(intervals)[0]]
        _, intervals2 = extract_intervals(trace)
        second = [c.key for c in enumerate_candidates(intervals2)[0]]
        assert first == second

    def test_candidate_cap_truncates_loudly(self):
        _, intervals = extract_intervals(hit_trace(chain_len=2))
        candidates, truncated = enumerate_candidates(
            intervals, max_candidates=0
        )
        assert candidates == [] and truncated

    def test_step_cap_truncates_loudly(self):
        _, intervals = extract_intervals(hit_trace(chain_len=2))
        candidates, truncated = enumerate_candidates(intervals, max_steps=0)
        assert candidates == [] and truncated

    def test_cycle_len_cap_suppresses_long_cycles(self):
        _, intervals = extract_intervals(hit_trace(chain_len=4))
        candidates, truncated = enumerate_candidates(
            intervals, max_cycle_len=3
        )
        # The only cycle needs 4 intervals; capping below that finds
        # nothing — and says nothing was cut (the cap bounded the path,
        # not the candidate count).
        assert candidates == [] and not truncated

    def test_distributed_intervals_carry_stream_provenance(self):
        _, intervals = extract_intervals(hit_trace(chain_len=2, sites=2))
        published = [iv for iv in intervals if iv.kind == "publish_delta"]
        assert published, "sites=2 must route statuses through the wire"
        origin = published[0].origin()
        assert origin.kind == "publish_delta"
        assert origin.site is not None and origin.stream is not None


class TestSequentialRoundsStayOrdered:
    def test_warmup_rounds_never_join_the_cycle(self):
        # Warm-up barrier rounds complete in the recorded run; release
        # edges order round r after r-1, so their intervals are not
        # concurrent with anything that could cycle.
        _, intervals = extract_intervals(hit_trace(chain_len=2, rounds=3))
        candidates, _ = enumerate_candidates(intervals)
        assert len(candidates) == 1
        for interval in candidates[0].intervals:
            assert "bar" not in {
                str(e.phaser) for e in interval.status.waits
            }

    def test_rounds_of_one_task_are_not_self_concurrent(self):
        records = []
        seq = 0
        for r in range(1, 4):
            records.append(ev.advance(seq, "h", "p", r)); seq += 1
            records.append(ev.block(seq, "t", w("p", r, p=r - 1))); seq += 1
            records.append(ev.unblock(seq, "t")); seq += 1
        _, intervals = extract_intervals(records)
        assert len(intervals) == 3
        candidates, truncated = enumerate_candidates(intervals)
        assert candidates == [] and not truncated
