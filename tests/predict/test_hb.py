"""Unit tests for the happens-before model (repro.predict.hb).

The model's soundness contract: program order per task, release order
from advances into the unblocks they enable, publish→sync attribution
of published status ops to their tasks — and deliberately *no* ordering
between distinct tasks that merely share a publish stream.
"""

from __future__ import annotations

import repro.trace.events as ev
from repro.core.events import BlockedStatus, Event, waiting_on
from repro.predict.candidates import extract_intervals
from repro.predict.hb import build_hb_model
from repro.trace.events import status_to_obj


def w(phaser: str, phase: int, **registered: int) -> BlockedStatus:
    return waiting_on(phaser, phase, **registered)


class TestProgramOrder:
    def test_events_per_task_in_order_with_increasing_ticks(self):
        records = [
            ev.register(0, "t", "p", 0),
            ev.block(1, "t", w("p", 1, p=0)),
            ev.unblock(2, "t"),
        ]
        model = build_hb_model(records)
        events = model.events["t"]
        assert [e.kind for e in events] == ["register", "block", "unblock"]
        assert [e.tick for e in events] == [1, 2, 3]
        assert [e.seq for e in events] == [0, 1, 2]
        assert model.records_seen == 3

    def test_tasks_listed_in_canonical_order(self):
        records = [
            ev.advance(0, "zz", "p", 1),
            ev.advance(1, "aa", "q", 1),
        ]
        assert build_hb_model(records).tasks() == ["aa", "zz"]


class TestReleaseOrder:
    def test_unblock_joins_advancing_tasks_clock(self):
        # h releases t's wait on p; t's *next* block must be causally
        # after h's advance (the release edge), so its clock sees h.
        records = [
            ev.advance(0, "h", "p", 1),
            ev.block(1, "t", w("p", 1, p=0)),
            ev.unblock(2, "t"),
            ev.block(3, "t", w("q", 1, q=0)),
        ]
        _, intervals = extract_intervals(records)
        first, second = intervals
        assert first.task == "t" and "h" not in first.block_clock
        assert second.block_clock.get("h", 0) >= 1

    def test_advance_after_block_does_not_backdate(self):
        # The advance lands after the block opened: the block's clock
        # must not see the releaser (the wait and the advance are
        # concurrent until the unblock).
        records = [
            ev.block(0, "t", w("p", 1, p=0)),
            ev.advance(1, "h", "p", 1),
            ev.unblock(2, "t"),
        ]
        _, intervals = extract_intervals(records)
        assert "h" not in intervals[0].block_clock
        assert intervals[0].close_tick is not None


class TestPublishAttribution:
    def test_published_statuses_attributed_to_their_tasks(self):
        payload = {
            "a": status_to_obj(w("p", 1, p=0)),
            "b": status_to_obj(w("q", 1, q=0)),
        }
        model = build_hb_model([ev.publish(0, "site0", payload)])
        assert set(model.events) == {"a", "b"}
        for task in ("a", "b"):
            (event,) = model.events[task]
            assert event.kind == "block"
            assert event.site == "site0"

    def test_bucket_diff_emits_unblocks_for_vanished_tasks(self):
        full = {"a": status_to_obj(w("p", 1, p=0))}
        model = build_hb_model([
            ev.publish(0, "site0", full),
            ev.publish(1, "site0", {}),
        ])
        assert [e.kind for e in model.events["a"]] == ["block", "unblock"]

    def test_republication_of_unchanged_status_is_not_a_new_block(self):
        full = {"a": status_to_obj(w("p", 1, p=0))}
        model = build_hb_model([
            ev.publish(0, "site0", full),
            ev.publish(1, "site0", full),
        ])
        assert [e.kind for e in model.events["a"]] == ["block"]

    def test_stream_order_does_not_order_distinct_tasks(self):
        # Two tasks' statuses arrive through one site's stream; the
        # model must keep them concurrent (sparse-HB contract) — the
        # later block's clock must not see the earlier task.
        payload_a = {"a": status_to_obj(w("p", 1, p=0, q=0))}
        payload_ab = {
            "a": status_to_obj(w("p", 1, p=0, q=0)),
            "b": status_to_obj(w("q", 1, q=0, p=0)),
        }
        _, intervals = extract_intervals([
            ev.publish(0, "site0", payload_a),
            ev.publish(1, "site0", payload_ab),
        ])
        by_task = {iv.task: iv for iv in intervals}
        assert "a" not in by_task["b"].block_clock


class TestStatusChurn:
    def test_superseding_status_closes_the_previous_interval(self):
        records = [
            ev.block(0, "t", w("p", 1, p=0)),
            ev.block(1, "t", w("p", 2, p=1)),
        ]
        _, intervals = extract_intervals(records)
        assert len(intervals) == 2
        assert intervals[0].close_seq == 1
        assert intervals[1].close_seq is None

    def test_unblock_without_open_block_is_ignored(self):
        model = build_hb_model([ev.unblock(0, "t")])
        assert model.events == {}
        assert model.records_seen == 1

    def test_waits_key_events_survive_as_event_objects(self):
        records = [ev.block(0, "t", w("p", 3, p=1))]
        _, intervals = extract_intervals(records)
        (interval,) = intervals
        assert interval.status.waits == frozenset({Event("p", 3)})
        assert interval.status.registered == {"p": 1}
