"""The predict CLI surface: golden byte-identity, witness emission,
mismatch signalling, metrics determinism.

Regenerating the golden after an *intentional* change::

    PYTHONPATH=src python -m repro.trace predict tests/trace/corpus \
        > tests/trace/corpus/expected_predict.txt 2>/dev/null
"""

from __future__ import annotations

import json
import pathlib

from repro.trace.cli import main
from repro.trace.codec import save_trace
from repro.trace.corpus import NearMissSpec, build_trace

CORPUS = pathlib.Path(__file__).parent.parent / "trace" / "corpus"
GOLDEN = CORPUS / "expected_predict.txt"


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestGoldenPredictOutput:
    def test_serial_output_matches_golden(self, capsys):
        code, out = run_cli(capsys, "predict", str(CORPUS))
        assert code == 0
        assert out == GOLDEN.read_text()

    def test_parallel_output_matches_golden(self, capsys):
        """The CI assertion, in-process: --parallel 2 is byte-identical
        to the serial reference."""
        code, out = run_cli(capsys, "predict", str(CORPUS),
                            "--parallel", "2")
        assert code == 0
        assert out == GOLDEN.read_text()

    def test_golden_pins_confirmed_predictions(self):
        """The golden itself must witness the feature: confirmed
        predictions and zero mismatches."""
        text = GOLDEN.read_text()
        assert "outcome=predicted" in text
        assert "prediction 1:" in text
        assert "0 mismatch(es)" in text


class TestSingleFileMode:
    def test_hit_pin_prints_prediction(self, capsys):
        path = next(CORPUS.glob("*-hit-ok.jsonl"))
        code, out = run_cli(capsys, "predict", str(path))
        assert code == 0
        assert out.startswith(f"trace: {path}\n")
        assert "outcome=predicted" in out
        assert "prediction 1:" in out
        assert "mined from:" in out

    def test_control_pin_is_clean(self, capsys):
        path = next(CORPUS.glob("*-ctl-ok.jsonl"))
        code, out = run_cli(capsys, "predict", str(path))
        assert code == 0
        assert "outcome=clean" in out
        assert "prediction" not in out.replace("predictions:", "")


class TestWitnessEmission:
    def test_emitted_witness_replays_to_deadlock(self, capsys, tmp_path):
        path = next(CORPUS.glob("*-hit-ok.jsonl"))
        out_dir = tmp_path / "witnesses"
        code, _ = run_cli(capsys, "predict", str(path),
                          "--emit-witness", str(out_dir))
        assert code == 0
        written = sorted(out_dir.glob("*-predicted-*.jsonl"))
        assert written, "expected at least one witness file"
        for wpath in written:
            code, out = run_cli(capsys, "replay", str(wpath))
            assert code == 0
            assert "deadlock" in out.lower()

    def test_corpus_mode_emits_witnesses_too(self, capsys, tmp_path):
        out_dir = tmp_path / "witnesses"
        code, _ = run_cli(capsys, "predict", str(CORPUS),
                          "--emit-witness", str(out_dir))
        assert code == 0
        # Both hit pins (jsonl + binary codecs of the same schedule)
        # share a stem, so their identical witnesses land on one path.
        assert len(list(out_dir.glob("*-hit-ok-predicted-*.jsonl"))) >= 1


class TestMismatchSignalling:
    def test_unrealised_expectation_exits_nonzero(self, capsys, tmp_path):
        # A control schedule doctored to *claim* a planted near-miss:
        # corpus mode must flag the contradiction and exit 1.
        trace = build_trace(NearMissSpec(chain_len=2, realisable=False))
        trace.header.meta["expect_prediction"] = True
        save_trace(trace, tmp_path / "doctored-ok.jsonl", codec="jsonl")
        code, out = run_cli(capsys, "predict", str(tmp_path))
        assert code == 1
        assert "1 mismatch(es)" in out


class TestMetricsDeterminism:
    def test_metrics_json_identical_serial_vs_parallel(self, capsys,
                                                       tmp_path):
        serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
        assert run_cli(capsys, "predict", str(CORPUS),
                       "--metrics-json", str(serial))[0] == 0
        assert run_cli(capsys, "predict", str(CORPUS), "--parallel", "3",
                       "--metrics-json", str(parallel))[0] == 0
        assert serial.read_bytes() == parallel.read_bytes()
        snapshot = json.loads(serial.read_text())
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_predict_traces_total" in names
        assert "repro_predict_candidates_total" in names
        assert "repro_predict_witness_records" in names
