"""The soundness differential layer (the PR's acceptance pins).

Three legs:

* **Corpus differential** — for every checked-in corpus member, every
  prediction's witness replays to a confirmed deadlock in *both*
  engines (classic and incremental) with identical reports naming the
  candidate's task set; ok-traces without a near-miss (every existing
  family plus the ``ctl`` pins) yield zero predictions; each ``hit``
  pin yields at least one confirmed prediction; dl-traces short-circuit
  to ``manifest``.
* **Property tests** — randomised race-free SPMD barrier schedules
  (seeded, so failures replay) never produce a prediction: prediction
  is sound against schedule noise, not just against the pinned corpus.
* **Determinism** — predicting twice over the same bytes produces
  equal observable results.
"""

from __future__ import annotations

import pathlib
import random

import pytest

import repro.trace.events as ev
from repro.core.events import BlockedStatus, Event
from repro.core.selection import GraphModel
from repro.predict.engine import CLEAN, MANIFEST, PREDICTED, predict_trace
from repro.trace.events import Trace, TraceHeader
from repro.trace.parallel import discover_traces
from repro.trace.replay import DETECTION, replay

CORPUS = pathlib.Path(__file__).parent.parent / "trace" / "corpus"


def corpus_files():
    return discover_traces(CORPUS)


def corpus_ids(path):
    return path.name


class TestCorpusDifferential:
    @pytest.mark.parametrize("path", corpus_files(), ids=corpus_ids)
    def test_every_prediction_is_engine_confirmed(self, path):
        """The headline soundness pin: a predicted report IS an engine
        report of a concrete replayable witness."""
        result = predict_trace(str(path))
        for prediction in result.confirmed:
            classic = replay(prediction.witness, mode=DETECTION,
                             model=GraphModel.AUTO, check_every=1)
            incremental = replay(prediction.witness, mode=DETECTION,
                                 model=GraphModel.AUTO, check_every=1,
                                 incremental=True)
            assert classic.deadlocked, path.name
            assert incremental.deadlocked, path.name
            assert classic.reports == incremental.reports, path.name
            tasks = frozenset(prediction.candidate.tasks)
            assert any(
                frozenset(str(t) for t in r.tasks) == tasks
                for r in classic.reports
            ), path.name

    @pytest.mark.parametrize("path", corpus_files(), ids=corpus_ids)
    def test_outcome_matches_corpus_ground_truth(self, path):
        """dl-traces are manifest; ok-traces predict iff their metadata
        says a realisable near-miss was planted (``expect_prediction``
        — the existing families carry none, so they must stay clean)."""
        from repro.trace.codec import load_trace

        trace = load_trace(path)
        result = predict_trace(trace)
        if replay(trace).deadlocked:
            assert result.outcome == MANIFEST, path.name
            assert not result.confirmed
            return
        expected = bool(trace.header.meta.get("expect_prediction"))
        if expected:
            assert result.outcome == PREDICTED, path.name
            assert len(result.confirmed) >= 1, path.name
        else:
            assert result.outcome == CLEAN, path.name
            assert not result.confirmed, path.name

    def test_corpus_carries_both_polarity_pins(self):
        """Guard the ground truth itself: at least one hit and one ctl
        pin must exist, or the two tests above pass vacuously."""
        names = {p.name for p in corpus_files()}
        assert any("-hit-ok" in n for n in names)
        assert any("-ctl-ok" in n for n in names)

    def test_prediction_provenance_points_at_original_records(self):
        """Re-homed provenance: edge origins are ordinals of the mined
        trace, and the report carries no detection coordinates — a
        prediction has no closing record in the recorded run."""
        hits = [p for p in corpus_files() if "-hit-ok" in p.name]
        for path in hits:
            result = predict_trace(str(path))
            for prediction in result.confirmed:
                report = prediction.report
                assert report.detection_lag is None
                assert report.detected_at is None
                opened = {iv.open_seq
                          for iv in prediction.candidate.intervals}
                assert report.provenance, path.name
                for edge in report.provenance:
                    assert edge.source_origin.ordinal in opened
                    assert edge.target_origin.ordinal in opened


def racefree_barrier_trace(seed: int) -> Trace:
    """A randomised race-free SPMD schedule: ``n`` tasks run ``rounds``
    barrier rounds; per round every task advances (arrives) *before*
    blocking, so its registered phase equals the awaited phase and no
    status impedes another — no reordering can deadlock.  Arrival
    order, block order and release interleaving are all drawn from the
    seed."""
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    rounds = rng.randint(1, 4)
    tasks = [f"t{i}" for i in range(n)]
    records = []
    seq = 0

    def emit(rec):
        nonlocal seq
        records.append(rec)
        seq += 1

    for task in tasks:
        emit(ev.register(seq, task, "bar", 0))
    for r in range(1, rounds + 1):
        arrivals = tasks[:]
        rng.shuffle(arrivals)
        blocked = []
        for task in arrivals:
            emit(ev.advance(seq, task, "bar", r))
            # Some tasks block for the stragglers, some skip straight
            # through (they observed everyone already arrived).
            if rng.random() < 0.8:
                emit(ev.block(seq, task, BlockedStatus(
                    waits=frozenset({Event("bar", r)}),
                    registered={"bar": r},
                )))
                blocked.append(task)
        rng.shuffle(blocked)
        for task in blocked:
            emit(ev.unblock(seq, task))
    return Trace(
        header=TraceHeader(version=3, meta={
            "generator": "tests.predict", "scenario": f"racefree-{seed}",
            "expect_deadlock": False,
        }),
        records=records,
    )


class TestRaceFreeProperty:
    @pytest.mark.parametrize("seed", range(20))
    def test_racefree_schedules_yield_zero_predictions(self, seed):
        trace = racefree_barrier_trace(seed)
        assert not replay(trace).deadlocked  # the schedule is sound
        result = predict_trace(trace)
        assert result.outcome == CLEAN, f"seed={seed}"
        assert not result.confirmed
        assert not result.truncated

    @pytest.mark.parametrize("seed", [3, 11])
    def test_racefree_schedules_scan_no_candidates(self, seed):
        # Stronger than zero predictions: with registered == awaited
        # phase nothing impedes, so the enumerator finds no cycle to
        # even try.
        result = predict_trace(racefree_barrier_trace(seed))
        assert result.candidates_scanned == 0


class TestDeterminism:
    def test_predicting_twice_is_observably_identical(self):
        from repro.trace.codec import dumps

        hit = next(p for p in corpus_files() if "-hit-ok" in p.name)
        first = predict_trace(str(hit))
        second = predict_trace(str(hit))
        assert first.outcome == second.outcome == PREDICTED
        assert first.candidates_scanned == second.candidates_scanned
        assert [p.report for p in first.confirmed] == [
            p.report for p in second.confirmed
        ]
        assert [dumps(p.witness, "jsonl") for p in first.confirmed] == [
            dumps(p.witness, "jsonl") for p in second.confirmed
        ]
