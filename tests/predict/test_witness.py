"""Unit tests for witness construction (repro.predict.witness).

A witness must be (a) a legal trace — contiguous sequencing, decodable
records; (b) an HB-consistent reordering — it replays without error and
ends with every candidate task blocked; (c) deterministic — identical
bytes across repeated constructions.
"""

from __future__ import annotations

import pytest

from repro.core.selection import GraphModel
from repro.predict.candidates import (
    BlockInterval,
    Candidate,
    enumerate_candidates,
    extract_intervals,
)
from repro.predict.witness import build_witness
from repro.trace.codec import dumps
from repro.trace.corpus import NearMissSpec, build_trace
from repro.trace.events import RecordKind
from repro.trace.replay import DETECTION, replay


def witness_for(spec: NearMissSpec, index: int = 0):
    trace = build_trace(spec)
    model, intervals = extract_intervals(trace)
    candidates, _ = enumerate_candidates(intervals)
    assert candidates, "expected a candidate on a hit spec"
    return trace, candidates[0], build_witness(
        trace, model, candidates[0], index=index
    )


class TestWitnessShape:
    def test_records_are_contiguously_resequenced(self):
        _, _, witness = witness_for(NearMissSpec(chain_len=2))
        assert [r.seq for r in witness.records] == list(
            range(len(witness.records))
        )

    def test_ends_with_every_candidate_task_blocked(self):
        _, candidate, witness = witness_for(NearMissSpec(chain_len=3))
        blocked = set()
        for rec in witness.records:
            if rec.kind is RecordKind.BLOCK:
                blocked.add(str(rec.task))
            elif rec.kind is RecordKind.UNBLOCK:
                blocked.discard(str(rec.task))
        assert blocked == set(candidate.tasks)

    def test_published_ops_are_reemitted_as_local_records(self):
        # sites=2 routes statuses through the delta wire; the witness
        # must stand alone, so no publish records may survive.
        _, _, witness = witness_for(NearMissSpec(chain_len=2, sites=2))
        kinds = {rec.kind for rec in witness.records}
        assert RecordKind.PUBLISH not in kinds
        assert RecordKind.PUBLISH_DELTA not in kinds

    def test_header_meta_names_the_candidate(self):
        _, candidate, witness = witness_for(
            NearMissSpec(chain_len=2), index=7
        )
        meta = witness.header.meta
        assert meta["generator"] == "repro.predict"
        assert meta["kind"] == "witness"
        assert meta["candidate"] == 7
        assert meta["tasks"] == sorted(candidate.tasks)
        assert meta["expect_deadlock"] is True
        assert meta["source_family"] == "nearmiss"


class TestWitnessRealisability:
    @pytest.mark.parametrize("sites", [1, 2])
    def test_witness_replays_to_deadlock_in_both_engines(self, sites):
        _, candidate, witness = witness_for(
            NearMissSpec(chain_len=2, sites=sites)
        )
        classic = replay(witness, mode=DETECTION, model=GraphModel.AUTO,
                         check_every=1)
        incremental = replay(witness, mode=DETECTION,
                             model=GraphModel.AUTO, check_every=1,
                             incremental=True)
        assert classic.deadlocked and incremental.deadlocked
        assert classic.reports == incremental.reports
        tasks = frozenset(candidate.tasks)
        assert any(
            frozenset(str(t) for t in report.tasks) == tasks
            for report in classic.reports
        )

    def test_witness_bytes_are_stable(self):
        first = dumps(witness_for(NearMissSpec(chain_len=3, sites=2))[2],
                      "jsonl")
        second = dumps(witness_for(NearMissSpec(chain_len=3, sites=2))[2],
                       "jsonl")
        assert first == second


class TestWitnessErrors:
    def test_missing_block_event_raises(self):
        trace = build_trace(NearMissSpec(chain_len=2))
        model, intervals = extract_intervals(trace)
        bogus = Candidate(intervals=(
            BlockInterval(
                task=intervals[0].task,
                status=intervals[0].status,
                open_seq=10_000,  # no such record
            ),
        ))
        with pytest.raises(ValueError, match="no block event"):
            build_witness(trace, model, bogus)
