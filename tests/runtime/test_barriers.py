"""CyclicBarrier and CountDownLatch tests (the JArmus-supported classes)."""

from __future__ import annotations

import time

import pytest

from repro.runtime.barriers import (
    BrokenBarrierError,
    CountDownLatch,
    CyclicBarrier,
)
from repro.runtime.phaser import PhaserMembershipError


class TestCyclicBarrier:
    def test_parties_must_be_positive(self, off_runtime):
        with pytest.raises(ValueError):
            CyclicBarrier(0, off_runtime)

    def test_trips_when_all_arrive(self, off_runtime):
        bar = CyclicBarrier(3, off_runtime)
        generations = []

        def worker():
            generations.append(bar.await_barrier())

        tasks = [off_runtime.spawn(worker, register=[bar]) for _ in range(3)]
        for t in tasks:
            t.join(5)
        assert generations == [0, 0, 0]

    def test_cyclic_across_generations(self, off_runtime):
        bar = CyclicBarrier(2, off_runtime)
        seen = []

        def worker():
            for _ in range(4):
                seen.append(bar.await_barrier())

        tasks = [off_runtime.spawn(worker, register=[bar]) for _ in range(2)]
        for t in tasks:
            t.join(5)
        assert sorted(seen) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_over_registration_rejected(self, off_runtime):
        bar = CyclicBarrier(1, off_runtime)
        bar.register()
        with pytest.raises(BrokenBarrierError):
            bar.register(off_runtime.spawn(time.sleep, 0.01))

    def test_double_registration_rejected(self, off_runtime):
        bar = CyclicBarrier(2, off_runtime)
        bar.register()
        with pytest.raises(PhaserMembershipError):
            bar.register()

    def test_early_arrival_waits_for_unspawned_parties(self, off_runtime):
        """The spawn-registration race: the first worker reaches the
        barrier before its peers are even registered, and must wait."""
        bar = CyclicBarrier(3, off_runtime)
        log = []

        def worker(i: int):
            bar.await_barrier()
            log.append(i)

        t0 = off_runtime.spawn(worker, 0, register=[bar])
        time.sleep(0.05)
        assert log == []  # blocked: 2 parties outstanding
        t1 = off_runtime.spawn(worker, 1, register=[bar])
        t2 = off_runtime.spawn(worker, 2, register=[bar])
        for t in (t0, t1, t2):
            t.join(5)
        assert sorted(log) == [0, 1, 2]

    def test_deregister_withdraws_annotation(self, off_runtime):
        bar = CyclicBarrier(2, off_runtime)
        bar.register()
        assert bar.registered_parties == 1
        bar.deregister()
        assert bar.registered_parties == 0


class TestCountDownLatch:
    def test_negative_count_rejected(self, off_runtime):
        with pytest.raises(ValueError):
            CountDownLatch(-1, off_runtime)

    def test_await_on_zero_returns_immediately(self, off_runtime):
        CountDownLatch(0, off_runtime).await_latch()

    def test_count_down_releases(self, off_runtime):
        latch = CountDownLatch(2, off_runtime)
        released = []

        def waiter():
            latch.await_latch()
            released.append(True)

        task = off_runtime.spawn(waiter)
        latch.count_down()
        time.sleep(0.05)
        assert released == []
        latch.count_down()
        task.join(5)
        assert released == [True]

    def test_count_never_goes_negative(self, off_runtime):
        latch = CountDownLatch(1, off_runtime)
        latch.count_down()
        latch.count_down()
        assert latch.count == 0

    def test_registration_tracks_obligation(self, off_runtime):
        latch = CountDownLatch(1, off_runtime)
        latch.register()
        task = off_runtime.current_task()
        assert latch._phase_of(task) == 0  # owes a count-down
        latch.count_down()
        assert latch._phase_of(task) == 1  # discharged

    def test_double_registration_rejected(self, off_runtime):
        latch = CountDownLatch(1, off_runtime)
        latch.register()
        with pytest.raises(PhaserMembershipError):
            latch.register()

    def test_many_waiters(self, off_runtime):
        latch = CountDownLatch(1, off_runtime)
        out = []

        def waiter(i: int):
            latch.await_latch()
            out.append(i)

        tasks = [off_runtime.spawn(waiter, i) for i in range(5)]
        time.sleep(0.05)
        latch.count_down()
        for t in tasks:
            t.join(5)
        assert sorted(out) == [0, 1, 2, 3, 4]
