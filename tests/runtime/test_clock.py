"""X10-style clock tests: advance / resume / drop, clocked spawns."""

from __future__ import annotations

import time

from repro.runtime.clock import Clock


class TestClockBasics:
    def test_creator_is_registered(self, off_runtime):
        c = Clock(off_runtime)
        assert c.is_registered()

    def test_make_factory(self, off_runtime):
        assert Clock.make(off_runtime).is_registered()

    def test_advance_synchronises(self, off_runtime):
        c = Clock(off_runtime)
        log = []

        def worker():
            log.append("w1")
            c.advance()
            log.append("w2")

        task = off_runtime.spawn(worker, register=[c])
        time.sleep(0.05)
        assert log == ["w1"]
        c.advance()
        task.join(5)
        assert log == ["w1", "w2"]

    def test_drop_releases_others(self, off_runtime):
        c = Clock(off_runtime)

        def worker():
            c.advance()
            c.drop()

        task = off_runtime.spawn(worker, register=[c])
        time.sleep(0.02)
        c.drop()  # the creator leaves instead of advancing
        task.join(5)


class TestResume:
    def test_resume_then_advance_single_arrival(self, off_runtime):
        """resume initiates the split-phase; the following advance only
        waits — one arrival total, not two."""
        c = Clock(off_runtime)
        phases = []

        def worker():
            c.resume()  # non-blocking arrival
            phases.append(c.local_phase())
            c.advance()  # completes the same phase
            phases.append(c.local_phase())
            c.drop()

        task = off_runtime.spawn(worker, register=[c])
        time.sleep(0.05)
        c.advance()
        c.drop()
        task.join(5)
        assert phases == [1, 1]  # no double arrival

    def test_resume_overlaps_work(self, off_runtime):
        c = Clock(off_runtime)
        overlapped = []

        def worker():
            c.resume()
            overlapped.append(True)  # runs while the clock is pending
            c.advance()
            c.drop()

        task = off_runtime.spawn(worker, register=[c])
        time.sleep(0.05)
        assert overlapped == [True]
        c.advance()
        c.drop()
        task.join(5)


class TestClockedSpawn:
    def test_spawn_registered_children(self, off_runtime):
        c = Clock(off_runtime)
        results = []

        def worker(i: int):
            c.advance()
            results.append(i)
            c.drop()

        tasks = [off_runtime.spawn(worker, i, register=[c]) for i in range(4)]
        c.advance()  # the creator participates in the first step
        c.drop()
        for t in tasks:
            t.join(5)
        assert sorted(results) == [0, 1, 2, 3]
