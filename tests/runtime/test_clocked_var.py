"""Clocked-variable tests (Atkins et al.): phased reads and writes."""

from __future__ import annotations

import operator

import pytest

from repro.runtime.clocked_var import ClockedVar


class TestPhasedAccess:
    def test_initial_value_at_phase_zero(self, off_runtime):
        cv = ClockedVar(42, runtime=off_runtime)
        assert cv.get() == 42

    def test_write_invisible_until_advance(self, off_runtime):
        cv = ClockedVar(0, runtime=off_runtime)
        cv.set(7)
        assert cv.get() == 0  # still phase 0: the write targets phase 1
        cv.next()
        assert cv.get() == 7

    def test_unwritten_phase_inherits_previous(self, off_runtime):
        cv = ClockedVar(5, runtime=off_runtime)
        cv.next()  # nobody wrote phase 1
        assert cv.get() == 5
        cv.set(9)
        cv.next()
        assert cv.get() == 9

    def test_read_requires_registration(self, off_runtime):
        cv = ClockedVar(0, runtime=off_runtime)
        failures = []

        def outsider():
            try:
                cv.get()
            except RuntimeError as exc:
                failures.append(exc)

        off_runtime.spawn(outsider).join(5)
        assert failures


class TestWriterReaderPair:
    def test_pipeline(self, off_runtime):
        cv = ClockedVar(0, runtime=off_runtime)
        got = []

        def writer():
            for k in (10, 20, 30):
                cv.set(k)
                cv.next()
            cv.drop()

        def reader():
            for _ in range(3):
                cv.next()
                got.append(cv.get())
            cv.drop()

        tw = off_runtime.spawn(writer, register=[cv])
        tr = off_runtime.spawn(reader, register=[cv])
        cv.drop()  # the creator steps aside
        tw.join(5)
        tr.join(5)
        assert got == [10, 20, 30]

    def test_data_race_freedom_by_construction(self, off_runtime):
        """Readers never observe a torn/new value mid-phase: within a
        phase, get() is stable no matter what writers set()."""
        cv = ClockedVar("stable", runtime=off_runtime)
        observed = []

        def writer():
            cv.set("next-phase")
            observed.append(cv.get())  # writer's own read: still phase 0
            cv.next()
            cv.drop()

        task = off_runtime.spawn(writer, register=[cv])
        cv.drop()  # the creator leaves so the writer's next() can fire
        task.join(5)
        assert observed == ["stable"]


class TestReducer:
    def test_last_write_wins_without_reducer(self, off_runtime):
        cv = ClockedVar(0, runtime=off_runtime)
        cv.set(1)
        cv.set(2)
        cv.next()
        assert cv.get() == 2

    def test_reducer_combines_same_phase_writes(self, off_runtime):
        cv = ClockedVar(0, reducer=operator.add, runtime=off_runtime)
        done = []

        def contributor(value: int):
            cv.set(value)
            cv.next()
            done.append(cv.get())
            cv.drop()

        tasks = [
            off_runtime.spawn(contributor, v, register=[cv]) for v in (1, 2, 3)
        ]
        cv.drop()
        for t in tasks:
            t.join(5)
        assert done == [6, 6, 6]  # the phased all-reduce pattern
