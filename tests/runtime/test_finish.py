"""Finish-block tests: join semantics, nesting, failure propagation."""

from __future__ import annotations

import time

import pytest

from repro.runtime.finish import Finish
from repro.runtime.clock import Clock
from repro.runtime.tasks import TaskFailedError


class TestJoin:
    def test_waits_for_all_children(self, off_runtime):
        done = []
        with Finish(off_runtime) as f:
            for i in range(5):
                f.spawn(lambda i=i: (time.sleep(0.01), done.append(i)))
        assert sorted(done) == [0, 1, 2, 3, 4]

    def test_empty_finish(self, off_runtime):
        with Finish(off_runtime):
            pass

    def test_join_counts_grandchildren(self, off_runtime):
        """Transitive join: asyncs spawned by children (without an inner
        finish) are still awaited by the outer finish."""
        done = []

        def child():
            off_runtime.spawn(
                lambda: (time.sleep(0.03), done.append("grandchild"))
            )
            done.append("child")

        with Finish(off_runtime) as f:
            f.spawn(child)
        assert sorted(done) == ["child", "grandchild"]

    def test_nested_finish(self, off_runtime):
        order = []

        def middle(i: int):
            with Finish(off_runtime) as inner:
                for j in range(2):
                    inner.spawn(lambda j=j: order.append((i, j)))
            order.append(("middle-done", i))

        with Finish(off_runtime) as outer:
            for i in range(2):
                outer.spawn(middle, i)
        leaves = [e for e in order if isinstance(e[0], int)]
        assert len(leaves) == 4
        # Each middle's leaves complete before its own done marker.
        for i in range(2):
            done_idx = order.index(("middle-done", i))
            for j in range(2):
                assert order.index((i, j)) < done_idx


class TestFailures:
    def test_child_failure_reraised_after_join(self, off_runtime):
        done = []

        def bad():
            raise RuntimeError("child failed")

        with pytest.raises(TaskFailedError):
            with Finish(off_runtime) as f:
                f.spawn(bad)
                f.spawn(lambda: (time.sleep(0.02), done.append("ok")))
        assert done == ["ok"]  # the healthy sibling was still awaited

    def test_body_failure_does_not_hang_children(self, off_runtime):
        child_ran = []
        with pytest.raises(ValueError):
            with Finish(off_runtime) as f:
                f.spawn(lambda: (time.sleep(0.02), child_ran.append(1)))
                raise ValueError("body failed")
        time.sleep(0.1)
        assert child_ran == [1]

    def test_spawn_outside_scope_rejected(self, off_runtime):
        f = Finish(off_runtime)
        with pytest.raises(RuntimeError):
            f.spawn(lambda: None)


class TestWithClocks:
    def test_clocked_spawn_inside_finish(self, off_runtime):
        """The Figure 1 shape: finish + clocked asyncs (the fixed
        variant, with the driver dropping the clock)."""
        c = Clock(off_runtime)
        steps = []

        def worker(i: int):
            c.advance()
            steps.append(i)
            c.advance()
            c.drop()

        with Finish(off_runtime) as f:
            for i in range(3):
                f.spawn(worker, i, clocks=[c])
            c.drop()  # the fix from Section 2.1
        assert sorted(steps) == [0, 1, 2]

    def test_pending_children_counts(self, off_runtime):
        with Finish(off_runtime) as f:
            t = f.spawn(time.sleep, 0.05)
            assert f.pending_children >= 1
            t.join(5)
