"""Live-runtime wiring of the delta-maintained checker.

``ArmusRuntime(incremental=True)`` swaps the classic checker for an
:class:`~repro.core.incremental.IncrementalChecker`: the observer hooks
become graph deltas and the detection monitor polls without
snapshotting.  These tests pin that the swap changes *nothing*
semantically — same reports, same cancellations, same avoidance
refusals — through both the hook surface and real blocked threads.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.events import waiting_on
from repro.core.incremental import IncrementalChecker
from repro.core.report import DeadlockAvoidedError, DeadlockError
from repro.runtime.phaser import Phaser


@pytest.fixture
def incremental_detection(runtime_factory):
    return runtime_factory("detection", incremental=True)


@pytest.fixture
def incremental_avoidance(runtime_factory):
    return runtime_factory("avoidance", incremental=True)


class TestHookSurface:
    def test_runtime_installs_the_incremental_checker(self, runtime_factory):
        runtime = runtime_factory("detection", incremental=True)
        assert isinstance(runtime.checker, IncrementalChecker)

    def test_block_entry_is_a_delta(self, incremental_detection):
        rt = incremental_detection
        task = rt.current_task()
        rt.block_entry(task, waiting_on("p", 1, p=1))
        assert rt.checker.wfg_edge_count == 0
        assert rt.checker.dependency.blocked_count() == 1
        rt.block_exit(task)
        assert rt.checker.dependency.blocked_count() == 0

    def test_monitor_poll_is_snapshot_free_when_acyclic(
        self, incremental_detection
    ):
        """The tentpole's monitor claim: polling a deadlock-free state
        answers from the maintained graph (stats record the WFG fast
        path, never a built SG)."""
        rt = incremental_detection
        task = rt.current_task()
        rt.block_entry(task, waiting_on("bar", 1, bar=1))
        for _ in range(5):
            assert rt.monitor.poll_once() is None
        from repro.core.selection import GraphModel

        assert set(rt.checker.stats.model_histogram()) == {GraphModel.WFG}
        rt.block_exit(task)

    def test_avoidance_refuses_the_closing_block(self, incremental_avoidance):
        rt = incremental_avoidance
        other = rt.spawn(lambda: None)
        other.join(5)
        rt.checker.set_blocked(other.task_id, waiting_on("p", 1, p=1, q=0))
        report = rt.block_entry(
            rt.current_task(), waiting_on("q", 1, q=1, p=0)
        )
        assert report is not None and report.avoided
        # The doomed status was withdrawn from the delta state too.
        assert rt.checker.check() is None


class TestLiveDeadlocks:
    def crossed(self, runtime):
        """Two tasks in the classic crossed two-phaser deadlock."""
        ph1 = Phaser(runtime, register_self=False, name="p")
        ph2 = Phaser(runtime, register_self=False, name="q")
        gate = threading.Event()
        order = threading.Event()

        def first() -> None:
            gate.wait(10)
            order.set()
            ph1.arrive_and_await_advance()

        def second() -> None:
            gate.wait(10)
            order.wait(10)
            time.sleep(0.01)
            ph2.arrive_and_await_advance()

        t1 = runtime.spawn(first, register=[ph1, ph2], name="t1")
        t2 = runtime.spawn(second, register=[ph1, ph2], name="t2")
        gate.set()
        return t1, t2

    def test_incremental_detection_cancels_the_cycle(
        self, incremental_detection
    ):
        tasks = self.crossed(incremental_detection)
        for task in tasks:
            with pytest.raises(DeadlockError):
                task.join(10)
        assert incremental_detection.reports
        report = incremental_detection.reports[0]
        assert len(report.tasks) == 2  # both crossed tasks condemned

    def test_incremental_avoidance_raises_instead_of_blocking(
        self, incremental_avoidance
    ):
        tasks = self.crossed(incremental_avoidance)
        refused = 0
        for task in tasks:
            try:
                task.join(10)
            except DeadlockError:
                refused += 1
        assert refused >= 1  # the closing block was refused
        assert incremental_avoidance.reports
        assert incremental_avoidance.reports[0].avoided
        # After the refusal the delta state holds no cycle.
        assert incremental_avoidance.checker.check() is None

    def test_reports_match_classic_runtime(self, runtime_factory):
        """Same scenario, both checkers: the evidence is identical up to
        nondeterministic task ids (compare shapes)."""
        classic = runtime_factory("detection")
        incremental = runtime_factory("detection", incremental=True)
        shapes = []
        for runtime in (classic, incremental):
            tasks = self.crossed(runtime)
            for task in tasks:
                try:
                    task.join(10)
                except DeadlockError:
                    pass
            assert runtime.reports
            report = runtime.reports[0]
            shapes.append(
                (len(report.tasks), len(report.events), report.model_used)
            )
        assert shapes[0] == shapes[1]
