"""ArmusLock tests: mutual exclusion and lock deadlocks in the same
event-based analysis as barriers (Section 5.3, ReentrantLock support)."""

from __future__ import annotations

import time

import pytest

from repro.core.report import DeadlockError
from repro.runtime.clock import Clock
from repro.runtime.locks import ArmusLock
from repro.runtime.tasks import TaskFailedError


def outcome(task):
    """'ok' or 'deadlock' for a joined task."""
    try:
        task.join(10)
        return "ok"
    except DeadlockError:
        return "deadlock"
    except TaskFailedError as err:
        if isinstance(err.cause, DeadlockError):
            return "deadlock"
        raise


class TestMutualExclusion:
    def test_critical_section_is_exclusive(self, off_runtime):
        lock = ArmusLock(off_runtime)
        counter = {"v": 0}

        def bump():
            for _ in range(200):
                with lock:
                    cur = counter["v"]
                    counter["v"] = cur + 1

        tasks = [off_runtime.spawn(bump) for _ in range(4)]
        for t in tasks:
            t.join(10)
        assert counter["v"] == 800

    def test_reentrancy(self, off_runtime):
        lock = ArmusLock(off_runtime)
        with lock:
            with lock:
                assert lock.locked()
        assert not lock.locked()

    def test_release_by_non_owner_rejected(self, off_runtime):
        lock = ArmusLock(off_runtime)
        errors = []

        def thief():
            try:
                lock.release()
            except RuntimeError as exc:
                errors.append(exc)

        with lock:
            off_runtime.spawn(thief).join(5)
        assert errors

    def test_leaked_lock_released_on_termination(self, off_runtime):
        lock = ArmusLock(off_runtime)

        def leaker():
            lock.acquire()  # never released

        off_runtime.spawn(leaker).join(5)
        assert not lock.locked()  # teardown released it
        with lock:
            pass  # and it is reusable


class TestLockDeadlocks:
    def test_lock_order_deadlock_avoided(self, avoidance_runtime):
        l1 = ArmusLock(avoidance_runtime, name="L1")
        l2 = ArmusLock(avoidance_runtime, name="L2")

        def grab(a, b):
            with a:
                time.sleep(0.05)
                with b:
                    pass

        ta = avoidance_runtime.spawn(grab, l1, l2)
        tb = avoidance_runtime.spawn(grab, l2, l1)
        results = sorted([outcome(ta), outcome(tb)])
        assert results == ["deadlock", "ok"]

    def test_lock_order_deadlock_detected(self, detection_runtime):
        l1 = ArmusLock(detection_runtime, name="L1")
        l2 = ArmusLock(detection_runtime, name="L2")

        def grab(a, b):
            with a:
                time.sleep(0.05)
                with b:
                    pass

        ta = detection_runtime.spawn(grab, l1, l2)
        tb = detection_runtime.spawn(grab, l2, l1)
        results = [outcome(ta), outcome(tb)]
        assert "deadlock" in results
        assert detection_runtime.reports

    def test_mixed_lock_barrier_deadlock(self, avoidance_runtime):
        """A lock held across a clock wait, needed by another member of
        the clock: the cross-abstraction cycle JArmus catches because
        locks and barriers share one analysis."""
        rt = avoidance_runtime
        clock = Clock(rt)
        lock = ArmusLock(rt, name="L")

        def holds_lock_at_clock():
            with lock:
                clock.advance()

        def needs_lock_first():
            time.sleep(0.05)
            with lock:
                pass
            clock.advance()

        t1 = rt.spawn(holds_lock_at_clock, register=[clock])
        t2 = rt.spawn(needs_lock_first, register=[clock])
        clock.drop()
        results = [outcome(t1), outcome(t2)]
        assert "deadlock" in results

    def test_no_false_positive_on_ordered_locks(self, avoidance_runtime):
        l1 = ArmusLock(avoidance_runtime)
        l2 = ArmusLock(avoidance_runtime)

        def grab():
            for _ in range(50):
                with l1:
                    with l2:
                        pass

        tasks = [avoidance_runtime.spawn(grab) for _ in range(3)]
        assert [outcome(t) for t in tasks] == ["ok", "ok", "ok"]
        assert not avoidance_runtime.reports
