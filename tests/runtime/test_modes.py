"""HJ registration-mode tests: SIG / WAIT / bounded producer-consumer.

The paper's §8 names HJ's "bounded producer-consumer" as the pattern
that would exercise Armus' expressiveness; these tests cover the mode
semantics, the verification view (wait-only members impede nothing on
the signal side), and deadlock detection through the bound.
"""

from __future__ import annotations

import time

import pytest

from repro.core.report import DeadlockError
from repro.runtime.locks import ArmusLock
from repro.runtime.modes import RegistrationMode
from repro.runtime.observer import registered_phases
from repro.runtime.phaser import Phaser, PhaserMembershipError
from repro.runtime.tasks import TaskFailedError


def outcome(task):
    try:
        task.join(10)
        return "ok"
    except DeadlockError:
        return "deadlock"
    except TaskFailedError as err:
        if isinstance(err.cause, DeadlockError):
            return "deadlock"
        raise


class TestModeSemantics:
    def test_sig_member_cannot_wait(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        ph.register(mode=RegistrationMode.SIG)
        ph.arrive()
        with pytest.raises(PhaserMembershipError):
            ph.await_advance()

    def test_wait_member_cannot_arrive(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        ph.register(mode=RegistrationMode.WAIT)
        with pytest.raises(PhaserMembershipError):
            ph.arrive()

    def test_mode_of(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        ph.register(mode=RegistrationMode.SIG)
        assert ph.mode_of() is RegistrationMode.SIG

    def test_wait_member_does_not_gate_signals(self, off_runtime):
        """A consumer that never 'arrives' must not block producers of an
        unbounded phaser — that is the whole point of WAIT mode."""
        ph = Phaser(off_runtime, register_self=False)

        def producer():
            ph.register(mode=RegistrationMode.SIG)
            for _ in range(5):
                ph.arrive()

        def consumer(seen):
            ph.register(mode=RegistrationMode.WAIT)
            for _ in range(5):
                ph.await_advance()
                seen.append(ph.wait_phase())

        seen: list = []
        tc = off_runtime.spawn(consumer, seen)
        time.sleep(0.02)
        tp = off_runtime.spawn(producer)
        tp.join(5)  # completes although the consumer is still catching up
        tc.join(5)
        assert seen == [1, 2, 3, 4, 5]

    def test_each_wait_observes_next_event(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        ph.register(mode=RegistrationMode.SIG)

        def consumer(log):
            ph.register(mode=RegistrationMode.WAIT)
            ph.await_advance()
            log.append(ph.wait_phase())

        log: list = []
        task = off_runtime.spawn(consumer, log)
        time.sleep(0.05)
        assert log == []  # nothing signalled yet
        ph.arrive()
        task.join(5)
        assert log == [1]


class TestVerificationView:
    def test_wait_member_impedes_nothing_on_signal_side(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        captured = {}

        def consumer():
            ph.register(mode=RegistrationMode.WAIT)
            captured.update(registered_phases(off_runtime.current_task()))

        off_runtime.spawn(consumer).join(5)
        assert ph._rid not in captured  # no signal-side entry
        assert captured.get(ph._rid_wait) == 0  # only the wait side

    def test_sig_member_impedes_signal_side(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        ph.register(mode=RegistrationMode.SIG)
        task = off_runtime.current_task()
        phases = registered_phases(task)
        assert phases[ph._rid] == 0
        ph.deregister()


class TestBoundedProducerConsumer:
    def test_producer_blocks_at_bound(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False, bound=2)
        progress = []

        def producer():
            ph.register(mode=RegistrationMode.SIG)
            for i in range(5):
                ph.arrive()
                progress.append(i + 1)

        ph.register(mode=RegistrationMode.WAIT)  # main = the consumer
        task = off_runtime.spawn(producer)
        time.sleep(0.1)
        assert progress == [1, 2]  # ran 2 ahead, then blocked
        ph.await_advance()  # consume one event
        time.sleep(0.1)
        assert progress == [1, 2, 3]
        ph.await_advance()
        ph.await_advance()
        time.sleep(0.1)
        assert progress == [1, 2, 3, 4, 5]
        task.join(5)

    def test_unbounded_without_wait_members(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False, bound=1)
        ph.register(mode=RegistrationMode.SIG)
        for _ in range(10):
            ph.arrive()  # no consumers: the bound never engages
        assert ph.local_phase() == 10
        ph.deregister()

    def test_negative_bound_rejected(self, off_runtime):
        with pytest.raises(ValueError):
            Phaser(off_runtime, bound=-1)

    def test_items_flow_in_order(self, off_runtime):
        """The actual producer-consumer pattern: a ring buffer sized by
        the bound, data races excluded by the phase discipline."""
        bound = 3
        ph = Phaser(off_runtime, register_self=False, bound=bound)
        buffer = [None] * (bound + 1)
        received = []
        n_items = 10

        def producer():
            for i in range(n_items):
                buffer[i % len(buffer)] = i * i
                ph.arrive()  # publish item i (blocks at the bound)

        def consumer():
            for i in range(n_items):
                ph.await_advance()  # wait for item i
                received.append(buffer[i % len(buffer)])

        # The Figure-2 lesson transposed to producer-consumer: the parent
        # holds a placeholder SIG registration while the pipeline is
        # assembled, so neither the consumer's first await can fire
        # vacuously nor the producer can outrun the bound.
        ph.register(mode=RegistrationMode.SIG)
        tc = off_runtime.spawn(
            consumer, register=[ph.in_mode(RegistrationMode.WAIT)]
        )
        tp = off_runtime.spawn(
            producer, register=[ph.in_mode(RegistrationMode.SIG)]
        )
        ph.deregister()  # both ends in place: the parent steps out
        tp.join(10)
        tc.join(10)
        assert received == [i * i for i in range(n_items)]

    def test_bound_deadlock_detected(self, detection_runtime):
        """Producer blocked at the bound while holding a lock the
        consumer needs: a producer-consumer deadlock, caught because the
        bound wait is an observable event like any other."""
        rt = detection_runtime
        ph = Phaser(rt, register_self=False, bound=1)
        lock = ArmusLock(rt, name="guard")

        def producer():
            with lock:  # holds the lock across the bounded arrive
                for _ in range(5):
                    ph.arrive()

        def consumer():
            time.sleep(0.05)
            for _ in range(5):
                with lock:  # needs the lock the blocked producer holds
                    ph.await_advance()

        tc = rt.spawn(consumer, register=[ph.in_mode(RegistrationMode.WAIT)])
        tp = rt.spawn(producer, register=[ph.in_mode(RegistrationMode.SIG)])
        results = sorted([outcome(tp), outcome(tc)])
        assert "deadlock" in results
        assert rt.reports
