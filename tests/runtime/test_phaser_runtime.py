"""Runtime Phaser tests: the Java-Phaser-style API of Section 2.2."""

from __future__ import annotations

import time

import pytest

from repro.runtime.phaser import Phaser, PhaserMembershipError


class TestMembership:
    def test_register_self_on_creation(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        assert ph.is_registered()
        assert ph.registered_parties == 1

    def test_register_self_off(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        assert not ph.is_registered()
        assert ph.registered_parties == 0

    def test_double_registration_rejected(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        with pytest.raises(PhaserMembershipError):
            ph.register()

    def test_deregister(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        ph.deregister()
        assert not ph.is_registered()

    def test_deregister_non_member_rejected(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        with pytest.raises(PhaserMembershipError):
            ph.deregister()

    def test_register_child_before_start_only(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        task = off_runtime.spawn(lambda: None)
        task.join(5)
        with pytest.raises(PhaserMembershipError):
            ph.register_child(task)

    def test_child_inherits_parent_phase(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        ph.arrive()
        ph.arrive()  # parent at phase 2 (alone, so no waiting needed)
        seen = []

        def child():
            seen.append(ph.local_phase())

        off_runtime.spawn(child, register=[ph]).join(5)
        assert seen == [2]


class TestSynchronisation:
    def test_arrive_returns_new_phase(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        assert ph.arrive() == 1
        assert ph.arrive() == 2

    def test_arrive_requires_membership(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        with pytest.raises(PhaserMembershipError):
            ph.arrive()

    def test_await_without_membership_needs_phase(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)
        with pytest.raises(PhaserMembershipError):
            ph.await_advance()

    def test_barrier_step_two_tasks(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        order = []

        def other():
            order.append("other-before")
            ph.arrive_and_await_advance()
            order.append("other-after")

        task = off_runtime.spawn(other, register=[ph])
        time.sleep(0.05)
        assert order == ["other-before"]  # blocked on the main task
        ph.arrive_and_await_advance()
        task.join(5)
        assert order == ["other-before", "other-after"]

    def test_split_phase(self, off_runtime):
        """arrive() then await_advance(phase): work overlaps the wait."""
        ph = Phaser(off_runtime, register_self=True)
        progress = []

        def worker():
            phase = ph.arrive()
            progress.append("worked")  # overlapped work
            ph.await_advance(phase)
            progress.append("synced")

        task = off_runtime.spawn(worker, register=[ph])
        time.sleep(0.05)
        assert "worked" in progress  # did not block at arrive
        assert "synced" not in progress
        ph.arrive()
        task.join(5)
        assert progress == ["worked", "synced"]

    def test_arrive_and_deregister_releases(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)

        def leaver():
            ph.arrive_and_deregister()

        off_runtime.spawn(leaver, register=[ph]).join(5)
        # Only the main task is left; its await trivially holds.
        ph.arrive()
        ph.await_advance()

    def test_future_phase_await_by_observer(self, off_runtime):
        """HJ-style: a non-member awaits an explicit (future) phase."""
        ph = Phaser(off_runtime, register_self=False)
        phases = []

        def member():
            ph.register()
            for _ in range(3):
                ph.arrive()
            phases.append(ph.local_phase())

        task = off_runtime.spawn(member)
        ph.await_advance(3)  # observer waits for phase 3
        task.join(5)
        assert phases == [3]

    def test_phase_is_min_of_members(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)
        assert ph.phase == 0
        ph.arrive()
        assert ph.phase == 1  # sole member
        assert ph.local_phase() == 1


class TestManyTasks:
    def test_spmd_rounds_with_parent_registration(self, off_runtime):
        """The Figure 2 idiom: the parent stays registered (the Java
        ``new Phaser(1)``) until every worker is registered, *then*
        arrives-and-deregisters — this is what makes the rounds
        lockstep."""
        ph = Phaser(off_runtime, register_self=True)
        counters = []

        def worker(rank: int):
            for step in range(5):
                counters.append((step, rank))
                ph.arrive_and_await_advance()

        tasks = [off_runtime.spawn(worker, i, register=[ph]) for i in range(6)]
        ph.arrive_and_deregister()  # all registered: the parent steps out
        for t in tasks:
            t.join(10)
        # Lockstep: every step-k entry precedes every step-(k+1) entry.
        positions = {}
        for idx, (step, _rank) in enumerate(counters):
            positions.setdefault(step, []).append(idx)
        for step in range(4):
            assert max(positions[step]) < min(positions[step + 1])

    def test_unregistered_parent_race(self, off_runtime):
        """Section 2.2's warning, reproduced: with *no* parent
        registration, synchronisations "proceed non-deterministically
        between already running threads and those that have yet to be
        started" — the program completes, but lockstep is not
        guaranteed.  (This is why new Phaser(0) is not a fix.)"""
        ph = Phaser(off_runtime, register_self=False)
        counters = []

        def worker(rank: int):
            for step in range(5):
                counters.append((step, rank))
                ph.arrive_and_await_advance()

        tasks = [off_runtime.spawn(worker, i, register=[ph]) for i in range(6)]
        for t in tasks:
            t.join(10)
        assert len(counters) == 30  # completes; ordering unspecified
