"""Randomized concurrency stress: the instrumentation must be race-free.

Many tasks hammer shared synchronizers through deadlock-free protocols
(global resource ordering, matched barrier rounds) under *avoidance*
mode — the strictest setting, where every block runs a synchronous
check.  Any false positive (a report on a deadlock-free run), lost
wake-up (timeout), or bookkeeping corruption fails the test.

These are the races that matter in a verification tool: a tool that
sometimes cries wolf is as unusable as one that hangs.
"""

from __future__ import annotations

import random

import pytest

from repro.runtime.barriers import CountDownLatch, CyclicBarrier
from repro.runtime.clock import Clock
from repro.runtime.locks import ArmusLock
from repro.runtime.phaser import Phaser


@pytest.mark.parametrize("seed", range(3))
def test_mixed_barrier_rounds(avoidance_runtime, seed):
    """Tasks alternate between two phasers in a fixed global order with
    per-round jitter in arrival timing."""
    rt = avoidance_runtime
    rng = random.Random(seed)
    n, rounds = 6, 8
    a = Phaser(rt, register_self=True, name="a")
    b = Phaser(rt, register_self=True, name="b")
    jitter = [[rng.randint(0, 200) for _ in range(rounds)] for _ in range(n)]

    def worker(i: int):
        for r in range(rounds):
            for _ in range(jitter[i][r]):
                pass  # busy jitter to scramble arrival order
            a.arrive_and_await_advance()
            b.arrive_and_await_advance()
        a.deregister()
        b.deregister()

    tasks = [rt.spawn(worker, i, register=[a, b]) for i in range(n)]
    a.arrive_and_deregister()
    b.arrive_and_deregister()
    for t in tasks:
        t.join(30)
    assert not rt.reports, [r.describe() for r in rt.reports]


@pytest.mark.parametrize("seed", range(3))
def test_dynamic_membership_churn(avoidance_runtime, seed):
    """Tasks join, synchronise a random number of rounds, and leave —
    the membership churn that breaks static-membership tools."""
    rt = avoidance_runtime
    rng = random.Random(100 + seed)
    clock = Clock(rt)
    n = 8
    rounds = [rng.randint(1, 5) for _ in range(n)]

    def worker(i: int):
        for _ in range(rounds[i]):
            clock.advance()
        clock.drop()

    tasks = [rt.spawn(worker, i, register=[clock]) for i in range(n)]
    clock.drop()
    for t in tasks:
        t.join(30)
    assert not rt.reports


def test_barrier_latch_lock_cocktail(avoidance_runtime):
    """All synchronizer kinds interleaved in one deadlock-free protocol."""
    rt = avoidance_runtime
    n = 5
    bar = CyclicBarrier(n, rt)
    latch = CountDownLatch(n, rt)
    lock = ArmusLock(rt)
    counter = {"v": 0}

    def worker(i: int):
        bar.await_barrier()
        with lock:
            counter["v"] += 1
        latch.count_down()
        latch.await_latch()  # everyone sees the full count
        bar.await_barrier()

    tasks = [
        rt.spawn(worker, i, register=[bar, latch]) for i in range(n)
    ]
    for t in tasks:
        t.join(30)
    assert counter["v"] == n
    assert not rt.reports


def test_rapid_block_unblock_cycles(detection_runtime):
    """Fast block/unblock churn against the periodic detector: the
    monitor must never report on transient (already-released) waits."""
    rt = detection_runtime
    n, rounds = 4, 40
    bar = CyclicBarrier(n, rt)

    def worker(i: int):
        for _ in range(rounds):
            bar.await_barrier()

    tasks = [rt.spawn(worker, i, register=[bar]) for i in range(n)]
    for t in tasks:
        t.join(30)
    assert not rt.reports
