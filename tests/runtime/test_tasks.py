"""Task lifecycle tests: spawn/join, cancellation, adoption, teardown."""

from __future__ import annotations

import time

import pytest

from repro.core.report import DeadlockDetectedError, DeadlockReport
from repro.core.selection import GraphModel
from repro.runtime.phaser import Phaser
from repro.runtime.tasks import TaskFailedError, lookup_task


def make_report(*tasks) -> DeadlockReport:
    return DeadlockReport(
        tasks=tasks,
        events=(),
        cycle=tasks + (tasks[0],),
        model_used=GraphModel.WFG,
        edge_count=0,
    )


class TestLifecycle:
    def test_spawn_and_join_returns_result(self, off_runtime):
        task = off_runtime.spawn(lambda x: x * 2, 21)
        assert task.join(5) == 42
        assert task.done()

    def test_join_wraps_failures(self, off_runtime):
        def boom():
            raise ValueError("nope")

        task = off_runtime.spawn(boom)
        with pytest.raises(TaskFailedError) as err:
            task.join(5)
        assert isinstance(err.value.cause, ValueError)

    def test_join_timeout(self, off_runtime):
        task = off_runtime.spawn(time.sleep, 1.0)
        with pytest.raises(TimeoutError):
            task.join(0.01)
        task.join(5)

    def test_task_ids_unique_and_looked_up(self, off_runtime):
        t1 = off_runtime.spawn(lambda: None)
        t2 = off_runtime.spawn(lambda: None)
        assert t1.task_id != t2.task_id
        assert lookup_task(t1.task_id) is t1
        t1.join(5)
        t2.join(5)

    def test_double_start_rejected(self, off_runtime):
        task = off_runtime.spawn(lambda: None)
        task.join(5)
        with pytest.raises(RuntimeError):
            task.start()


class TestCancellation:
    def test_cancel_is_one_shot(self, off_runtime):
        task = off_runtime.current_task()
        task.cancel(make_report(task.task_id))
        with pytest.raises(DeadlockDetectedError):
            task.check_cancelled()
        task.check_cancelled()  # second call: flag already consumed

    def test_cancelled_blocking_op_raises(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True)

        def wait_forever():
            ph.register()
            ph.arrive()
            ph.await_advance()  # blocked: the main task never arrives

        task = off_runtime.spawn(wait_forever)
        time.sleep(0.05)
        task.cancel(make_report(task.task_id))
        with pytest.raises(DeadlockDetectedError):
            task.join(5)


class TestAdoption:
    def test_current_task_is_stable(self, off_runtime):
        assert off_runtime.current_task() is off_runtime.current_task()

    def test_adopted_task_rehomes_to_new_runtime(
        self, off_runtime, runtime_factory
    ):
        task = off_runtime.current_task()
        assert task.runtime is off_runtime
        other = runtime_factory("off")
        assert other.current_task() is task
        assert task.runtime is other  # re-homed

    def test_spawned_tasks_do_not_rehome(self, off_runtime, runtime_factory):
        other = runtime_factory("off")
        captured = []

        def body():
            captured.append(other.current_task())

        task = off_runtime.spawn(body)
        task.join(5)
        assert captured[0] is task
        assert task.runtime is off_runtime  # spawned: pinned to spawner


class TestTeardown:
    def test_termination_deregisters_from_phasers(self, off_runtime):
        ph = Phaser(off_runtime, register_self=False)

        def body():
            ph.register()
            # terminate while registered (no deregistration)

        task = off_runtime.spawn(body)
        task.join(5)
        assert ph.registered_parties == 0  # X10/HJ auto-deregistration

    def test_termination_releases_waiters(self, off_runtime):
        """A member dying while others wait must not starve them (the
        X10/HJ mitigation the paper describes in Section 7)."""
        ph = Phaser(off_runtime, register_self=False)

        def sloppy():
            ph.register()
            time.sleep(0.05)
            # dies without arriving

        def waiter():
            ph.register()
            ph.arrive()
            ph.await_advance()

        t1 = off_runtime.spawn(sloppy)
        time.sleep(0.01)
        t2 = off_runtime.spawn(waiter)
        t1.join(5)
        t2.join(5)  # released when the sloppy member was torn down
