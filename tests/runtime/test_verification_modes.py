"""End-to-end verification tests: the paper's running example (Figures
1-2) under detection, avoidance, and both fixes; the JArmus registration
idiom; graph-model configurations."""

from __future__ import annotations

import time

import pytest

from repro.core.report import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    DeadlockError,
)
from repro.core.selection import GraphModel
from repro.runtime.clock import Clock
from repro.runtime.phaser import Phaser
from repro.runtime import registry
from repro.runtime.tasks import TaskFailedError


def averaging(runtime, I=3, J=2, fix=False):
    """Figures 1-2: parallel 1-D iterative averaging.

    ``fix=False`` reproduces the bug (the driver stays registered with
    the cyclic barrier it never advances); ``fix=True`` applies the
    Section 2.1 fix (drop before joining).
    """
    a = [float(i) for i in range(I + 2)]
    c = Clock(runtime)
    b = Phaser(runtime, register_self=True, name="join")

    def worker(i: int) -> None:
        for _ in range(J):
            left, right = a[i - 1], a[i + 1]
            c.advance()
            a[i] = (left + right) / 2
            c.advance()
        c.drop()
        b.arrive_and_deregister()

    tasks = [
        runtime.spawn(worker, i + 1, register=[c, b], name=f"w{i + 1}")
        for i in range(I)
    ]
    if fix:
        c.drop()
    b.arrive_and_await_advance()
    return a, tasks


class TestRunningExample:
    def test_detection_catches_the_bug(self, detection_runtime):
        with pytest.raises(DeadlockDetectedError) as err:
            averaging(detection_runtime, fix=False)
        report = err.value.report
        assert len(report.tasks) >= 2
        assert detection_runtime.reports

    def test_avoidance_raises_before_blocking(self, avoidance_runtime):
        with pytest.raises(DeadlockAvoidedError) as err:
            averaging(avoidance_runtime, fix=False)
        assert err.value.report.avoided

    def test_fixed_version_runs_everywhere(self, runtime_factory):
        for mode in ("off", "detection", "avoidance"):
            rt = runtime_factory(mode)
            a, tasks = averaging(rt, I=4, J=3, fix=True)
            for t in tasks:
                t.join(10)
            # The averaging of a linear ramp is the ramp itself.
            assert a == [float(i) for i in range(6)]
            assert not rt.reports

    def test_avoidance_makes_program_resilient(self, avoidance_runtime):
        """The paper: "The programmer can treat the exceptional situation
        to develop applications resilient to deadlocks."  Catch the
        avoidance error, apply the fix, finish the job."""
        rt = avoidance_runtime
        try:
            averaging(rt, fix=False)
        except DeadlockAvoidedError:
            pass  # the doomed join was refused and we were deregistered
        a, tasks = averaging(rt, I=3, J=2, fix=True)
        for t in tasks:
            # Workers of the first attempt may have died of avoidance
            # errors; the second attempt's workers must all succeed.
            t.join(10)
        assert a == [float(i) for i in range(5)]


class TestModesAndModels:
    @pytest.mark.parametrize(
        "model", (GraphModel.AUTO, GraphModel.WFG, GraphModel.SG)
    )
    def test_every_model_catches_the_bug(self, runtime_factory, model):
        rt = runtime_factory("avoidance", model=model)
        with pytest.raises(DeadlockAvoidedError):
            averaging(rt, fix=False)

    def test_off_mode_would_hang_so_we_only_check_no_reports(
        self, runtime_factory
    ):
        """OFF mode performs no verification: run only the fixed variant
        and confirm zero verification traffic."""
        rt = runtime_factory("off")
        _a, tasks = averaging(rt, fix=True)
        for t in tasks:
            t.join(10)
        assert rt.stats.checks == 0
        assert not rt.reports

    def test_detection_stats_accumulate(self, detection_runtime):
        with pytest.raises(DeadlockError):
            averaging(detection_runtime, fix=False)
        time.sleep(0.05)
        assert detection_runtime.stats.checks > 0


class TestJArmusIdiom:
    def test_register_annotation(self, avoidance_runtime):
        """Figure 2's JArmus.register(c, b): a task announcing its
        barriers from inside its own body."""
        rt = avoidance_runtime
        c = Phaser(rt, register_self=True, name="c")
        b = Phaser(rt, register_self=True, name="b")
        done = []

        def worker():
            registry.register(c, b)  # the annotation
            c.arrive_and_await_advance()
            c.arrive_and_deregister()
            b.arrive_and_deregister()
            done.append(True)

        task = rt.spawn(worker)
        time.sleep(0.05)
        c.arrive_and_deregister()  # parent leaves the cyclic barrier
        b.arrive_and_await_advance()
        task.join(10)
        assert done == [True]

    def test_register_rejects_non_synchronizers(self, off_runtime):
        with pytest.raises(TypeError):
            registry.register(object())

    def test_deregister_helper(self, off_runtime):
        c = Clock(off_runtime)
        registry.deregister(c)
        assert not c.is_registered()
