"""Direct unit tests for the runtime verifier and observer hooks."""

from __future__ import annotations

import threading

import pytest

from repro.core.events import Event, waiting_on
from repro.core.selection import GraphModel
from repro.runtime.observer import blocked_status, registered_phases
from repro.runtime.phaser import Phaser
from repro.runtime.verifier import (
    ArmusRuntime,
    VerificationMode,
    get_default_runtime,
    set_default_runtime,
)


class TestBlockEntryExit:
    def test_off_mode_is_a_noop(self, off_runtime):
        task = off_runtime.current_task()
        status = waiting_on("p", 1, p=1)
        assert off_runtime.block_entry(task, status) is None
        assert off_runtime.checker.dependency.blocked_count() == 0
        off_runtime.block_exit(task)  # harmless

    def test_detection_mode_publishes(self, detection_runtime):
        task = detection_runtime.current_task()
        status = waiting_on("p", 1, p=1)
        assert detection_runtime.block_entry(task, status) is None
        assert detection_runtime.checker.dependency.blocked_count() == 1
        detection_runtime.block_exit(task)
        assert detection_runtime.checker.dependency.blocked_count() == 0

    def test_avoidance_mode_vetoes_cycles(self, avoidance_runtime):
        rt = avoidance_runtime
        other = rt.spawn(lambda: None)
        other.join(5)
        rt.checker.set_blocked(other.task_id, waiting_on("p", 1, p=1, q=0))
        task = rt.current_task()
        report = rt.block_entry(task, waiting_on("q", 1, q=1, p=0))
        assert report is not None
        assert report.avoided
        assert rt.reports  # recorded on the runtime too

    def test_avoidance_mode_allows_safe_blocks(self, avoidance_runtime):
        task = avoidance_runtime.current_task()
        report = avoidance_runtime.block_entry(task, waiting_on("p", 1, p=1))
        assert report is None
        avoidance_runtime.block_exit(task)


class TestResourceIds:
    def test_unique_across_runtimes(self, runtime_factory):
        a = runtime_factory("off")
        b = runtime_factory("off")
        ids = {a.new_resource_id("x"), b.new_resource_id("x")}
        assert len(ids) == 2

    def test_label_embedded(self, off_runtime):
        assert off_runtime.new_resource_id("clock").startswith("clock#")


class TestObserverHelpers:
    def test_registered_phases_spans_synchronizers(self, off_runtime):
        p1 = Phaser(off_runtime, register_self=True, name="a")
        p2 = Phaser(off_runtime, register_self=True, name="b")
        p1.arrive()
        task = off_runtime.current_task()
        phases = registered_phases(task)
        assert phases[p1._rid] == 1
        assert phases[p2._rid] == 0
        p1.deregister()
        p2.deregister()

    def test_blocked_status_assembly(self, off_runtime):
        ph = Phaser(off_runtime, register_self=True, name="c")
        task = off_runtime.current_task()
        status = blocked_status(task, Event(ph._rid, 1))
        assert status.waits == frozenset({Event(ph._rid, 1)})
        assert status.registered[ph._rid] == 0
        ph.deregister()


class TestDefaultRuntime:
    def test_default_runtime_is_singleton(self):
        a = get_default_runtime()
        b = get_default_runtime()
        assert a is b

    def test_set_default_runtime(self):
        original = get_default_runtime()
        try:
            fresh = ArmusRuntime()
            set_default_runtime(fresh)
            assert get_default_runtime() is fresh
        finally:
            set_default_runtime(original)

    def test_synchronizer_uses_default(self):
        original = get_default_runtime()
        try:
            fresh = ArmusRuntime()
            set_default_runtime(fresh)
            ph = Phaser(register_self=False)
            assert ph.runtime is fresh
        finally:
            set_default_runtime(original)


class TestLifecycle:
    def test_context_manager(self):
        with ArmusRuntime(mode=VerificationMode.DETECTION) as rt:
            assert rt.monitor._thread is not None
        # stopped on exit
        assert rt.monitor._thread is None

    def test_off_mode_does_not_start_monitor(self):
        rt = ArmusRuntime(mode=VerificationMode.OFF).start()
        assert rt.monitor._thread is None
        rt.stop()

    def test_model_configuration_reaches_checker(self):
        rt = ArmusRuntime(model=GraphModel.WFG)
        assert rt.checker.model is GraphModel.WFG

    def test_cancel_on_detect_disabled(self, runtime_factory):
        rt = runtime_factory("detection", cancel_on_detect=False)
        t1 = rt.spawn(lambda: None)
        t1.join(5)
        rt.checker.set_blocked(t1.task_id, waiting_on("p", 1, p=1, q=0))
        t2 = rt.spawn(lambda: None)
        t2.join(5)
        rt.checker.set_blocked(t2.task_id, waiting_on("q", 1, q=1, p=0))
        report = rt.monitor.poll_once()
        assert report is not None
        assert not t1.cancelled and not t2.cancelled
