"""Release hygiene: documentation present, public API importable and
documented, examples syntactically sound, experiment index consistent."""

from __future__ import annotations

import ast
import importlib
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentation:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO / name
            assert path.exists(), name
            assert len(path.read_text()) > 1000, f"{name} is a stub"

    def test_design_lists_every_experiment(self):
        text = (REPO / "DESIGN.md").read_text()
        for artefact in ("Table 1", "Table 2", "Table 3", "Fig. 6",
                         "Fig. 7", "Fig. 8", "Fig. 9"):
            assert artefact in text, artefact

    def test_experiments_covers_every_artefact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artefact in ("Table 1", "Table 2", "Table 3", "Figure 6",
                         "Figure 7", "Figures 8 and 9"):
            assert artefact in text, artefact

    def test_bench_files_referenced_by_design_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for line in text.splitlines():
            if "benchmarks/bench_" not in line:
                continue
            fragment = line.split("benchmarks/")[1]
            filename = fragment.split("`")[0].split(";")[0]
            assert (REPO / "benchmarks" / filename).exists(), filename


class TestPublicApi:
    PACKAGES = [
        "repro",
        "repro.core",
        "repro.pl",
        "repro.runtime",
        "repro.aio",
        "repro.distributed",
        "repro.workloads",
        "repro.bench",
    ]

    @pytest.mark.parametrize("package", PACKAGES)
    def test_importable_with_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 40

    @pytest.mark.parametrize("package", PACKAGES[1:5])
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"

    def test_public_items_documented(self):
        """Every public class/function in the core package carries a
        docstring (deliverable: doc comments on every public item)."""
        import inspect

        for package in self.PACKAGES[1:]:
            module = importlib.import_module(package)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{package}.{name} lacks a docstring"


class TestExamples:
    def test_examples_present_and_parse(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 4
        for path in examples:
            tree = ast.parse(path.read_text())
            docstring = ast.get_docstring(tree)
            assert docstring and "Run::" in docstring, path.name

    def test_quickstart_is_the_entry_point(self):
        assert (REPO / "examples" / "quickstart.py").exists()
