"""Property-based tests of the paper's theorems (Section 4).

* **Theorem 4.8 (equivalence)** — the WFG of a resource-dependency
  state has a cycle iff its SG has one (and iff the GRG has one);
* **Theorem 4.10 (soundness)** — a WFG cycle of ``phi(S)`` identifies a
  task set on which ``S`` is deadlocked (Definition 3.2);
* **Theorem 4.15 (completeness)** — a deadlocked state's WFG has a
  cycle reachable from every deadlocked task;
* **Proposition 4.2 / Lemmas 4.5-4.6** — structural facts used by the
  proofs (contractions, out-degrees).

Hypothesis drives both arbitrary resource-dependency states (the
theorems' native domain) and random PL programs run to quiescence
through the full interpreter+checker pipeline.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.checker import DeadlockChecker
from repro.core.cycles import (
    cycle_reachable_from,
    find_cycle,
    has_cycle,
    is_cycle,
)
from repro.core.dependency import DependencySnapshot, ResourceDependency
from repro.core.events import BlockedStatus, Event
from repro.core.graphs import (
    build_grg,
    build_sg,
    build_wfg,
    sg_from_grg,
    wfg_from_grg,
)
from repro.core.selection import GraphModel, build_graph
from repro.pl.deadlock import deadlocked_subset, to_snapshot
from repro.pl.generator import random_seeded_program, random_seeded_state
from repro.pl.interpreter import Interpreter
from repro.pl.state import State

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def snapshots(draw) -> DependencySnapshot:
    """Arbitrary well-formed resource-dependency snapshots."""
    n_tasks = draw(st.integers(1, 8))
    n_phasers = draw(st.integers(1, 5))
    max_phase = 3
    dep = ResourceDependency()
    for i in range(n_tasks):
        # Each task registers a random subset of phasers at random phases
        registered = {}
        for p in range(n_phasers):
            if draw(st.booleans()):
                registered[f"p{p}"] = draw(st.integers(0, max_phase))
        if not registered:
            registered[f"p{draw(st.integers(0, n_phasers - 1))}"] = draw(
                st.integers(0, max_phase)
            )
        # ... and waits on 1-2 events of arbitrary phasers/phases.
        n_waits = draw(st.integers(1, 2))
        waits = frozenset(
            Event(
                f"p{draw(st.integers(0, n_phasers - 1))}",
                draw(st.integers(0, max_phase + 1)),
            )
            for _ in range(n_waits)
        )
        dep.set_blocked(f"t{i}", BlockedStatus(waits=waits, registered=registered))
    return dep.snapshot()


pl_state_seeds = st.integers(0, 10_000)
pl_program_seeds = st.integers(0, 2_000)


# ---------------------------------------------------------------------------
# Theorem 4.8: WFG cycle <=> SG cycle (via arbitrary snapshots)
# ---------------------------------------------------------------------------
@given(snapshots())
@settings(max_examples=300, deadline=None)
def test_equivalence_wfg_sg(snapshot):
    assert has_cycle(build_wfg(snapshot)) == has_cycle(build_sg(snapshot))


@given(snapshots())
@settings(max_examples=300, deadline=None)
def test_equivalence_extends_to_grg(snapshot):
    wfg_cyclic = has_cycle(build_wfg(snapshot))
    assert wfg_cyclic == has_cycle(build_grg(snapshot))


@given(snapshots())
@settings(max_examples=200, deadline=None)
def test_contraction_lemmas(snapshot):
    """Lemmas 4.5/4.6: the WFG and SG are edge contractions of the GRG."""
    grg = build_grg(snapshot)
    assert set(wfg_from_grg(grg).edges()) == set(build_wfg(snapshot).edges())
    assert set(sg_from_grg(grg).edges()) == set(build_sg(snapshot).edges())


@given(snapshots())
@settings(max_examples=200, deadline=None)
def test_adaptive_selection_agrees_with_fixed(snapshot):
    """The adaptive mode must never change the verification answer."""
    answers = {
        model: has_cycle(build_graph(snapshot, model).graph)
        for model in (GraphModel.WFG, GraphModel.SG, GraphModel.AUTO)
    }
    assert len(set(answers.values())) == 1


# ---------------------------------------------------------------------------
# Theorems 4.10 / 4.15 on arbitrary PL states
# ---------------------------------------------------------------------------
@given(pl_state_seeds)
@settings(max_examples=400, deadline=None)
def test_soundness_on_random_states(seed: int):
    """A cycle in wfg(phi(S)) implies S is deadlocked, and the cycle's
    tasks form (part of) a totally deadlocked subset."""
    state = random_seeded_state(seed)
    snapshot = to_snapshot(state)
    cycle = find_cycle(build_wfg(snapshot))
    if cycle is None:
        return
    subset = deadlocked_subset(state)
    assert subset, f"cycle {cycle} in a non-deadlocked state"
    assert set(cycle) <= subset


@given(pl_state_seeds)
@settings(max_examples=400, deadline=None)
def test_completeness_on_random_states(seed: int):
    """A deadlocked state's WFG has a cycle reachable from every
    deadlocked task (Theorem 4.15's exact shape)."""
    state = random_seeded_state(seed)
    subset = deadlocked_subset(state)
    if not subset:
        return
    wfg = build_wfg(to_snapshot(state))
    for task in subset:
        cycle = cycle_reachable_from(wfg, task)
        assert cycle is not None, f"no cycle reachable from {task}"
        assert is_cycle(wfg, cycle)


@given(pl_state_seeds)
@settings(max_examples=300, deadline=None)
def test_verification_verdict_matches_ground_truth(seed: int):
    """End to end on states: checker verdict == Definition 3.2 verdict."""
    state = random_seeded_state(seed)
    snapshot = to_snapshot(state)
    report = DeadlockChecker().check(snapshot=snapshot)
    assert (report is not None) == bool(deadlocked_subset(state))


# ---------------------------------------------------------------------------
# The full pipeline on random programs
# ---------------------------------------------------------------------------
@given(pl_program_seeds)
@settings(max_examples=60, deadline=None)
def test_random_programs_pipeline(seed: int):
    """Run a random program to quiescence with the checker attached:

    * a report during the run implies the final state is deadlocked
      (deadlocks are stable: a totally deadlocked subset never thaws);
    * a deadlocked final state implies the checker reported (run-end
      check = completeness);
    * no report and no deadlock implies quiescence is either proper
      termination or starvation (blocked tasks, no cycle).
    """
    program = random_seeded_program(random.Random(seed).randint(0, 1 << 30))
    checker = DeadlockChecker()
    result = Interpreter(seed=seed, checker=checker, max_steps=20_000).run(
        State.initial(program)
    )
    if result.exhausted:
        return  # budget ran out; no verdict to check
    if result.reports:
        assert result.is_deadlocked
    if result.is_deadlocked:
        assert result.reports
