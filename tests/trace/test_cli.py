"""CLI tests: the four ``python -m repro.trace`` subcommands."""

from __future__ import annotations

import pytest

from repro.trace.cli import main
from repro.trace.codec import load_trace


class TestGen:
    def test_smoke_grid_passes(self, capsys):
        assert main(["gen", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenarios verified" in out
        assert "FAIL" not in out

    def test_writes_corpus_files(self, tmp_path, capsys):
        rc = main([
            "gen", "--out", str(tmp_path), "--families", "cycle",
            "--cycle-lens", "2,3", "--fan-outs", "1", "--sites", "1",
            "--rounds", "1", "--codec", "both",
        ])
        assert rc == 0
        files = sorted(tmp_path.iterdir())
        # 2 cycle-lens x 1 x 1 x 1 x 2 verdicts x 2 codecs
        assert len(files) == 8
        assert load_trace(files[0]).records

    def test_writes_churn_family(self, tmp_path, capsys):
        rc = main([
            "gen", "--out", str(tmp_path), "--families", "churn",
            "--sites", "1", "--codec", "jsonl",
        ])
        assert rc == 0
        files = sorted(tmp_path.iterdir())
        assert files and all(f.name.startswith("churn-") for f in files)
        assert load_trace(files[0]).records

    def test_rejects_unknown_family(self, capsys):
        assert main(["gen", "--smoke", "--families", "nope"]) == 1

    def test_gen_without_out_or_smoke_fails(self, capsys):
        assert main(["gen"]) == 2


class TestReplayAndStats:
    @pytest.fixture()
    def corpus_file(self, tmp_path):
        main(["gen", "--out", str(tmp_path), "--cycle-lens", "2",
              "--fan-outs", "1", "--sites", "1", "--rounds", "1",
              "--codec", "jsonl"])
        return next(p for p in tmp_path.iterdir() if p.name.endswith("-dl.jsonl"))

    def test_replay_prints_report_and_throughput(self, corpus_file, capsys):
        assert main(["replay", str(corpus_file)]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "barrier deadlock detected" in out

    def test_replay_flags(self, corpus_file, capsys):
        assert main(["replay", str(corpus_file), "--model", "wfg",
                     "--check-every", "4"]) == 0
        assert "deadlock" in capsys.readouterr().out

    def test_stats_summarises(self, corpus_file, capsys):
        assert main(["stats", str(corpus_file)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out and "block" in out

    def test_verdict_mismatch_fails(self, tmp_path, capsys):
        """A trace whose meta promises a deadlock must produce one."""
        from repro.trace.codec import save_trace
        from repro.trace.corpus import ScenarioSpec, scenario_trace
        from repro.trace.events import Trace, TraceHeader

        honest = scenario_trace(
            ScenarioSpec(cycle_len=2, fan_out=1, deadlock=False)
        )
        lying = Trace(
            header=TraceHeader(meta={"expect_deadlock": True}),
            records=honest.records,
        )
        path = save_trace(lying, tmp_path / "lying.jsonl")
        assert main(["replay", str(path)]) == 1
        assert "MISMATCH" in capsys.readouterr().err


class TestRecord:
    def test_record_barrier_off_then_replay(self, tmp_path, capsys):
        out = tmp_path / "bar.jsonl"
        assert main(["record", "--scenario", "barrier", "--mode", "off",
                     "--out", str(out)]) == 0
        assert main(["replay", str(out)]) == 0
        assert "no deadlock found" in capsys.readouterr().out

    def test_record_crossed_detection_then_replay(self, tmp_path, capsys):
        out = tmp_path / "crossed.trace"
        assert main(["record", "--scenario", "crossed", "--out", str(out)]) == 0
        assert main(["replay", str(out)]) == 0
        assert "barrier deadlock detected" in capsys.readouterr().out

    def test_deadlocking_scenario_needs_verification(self, tmp_path, capsys):
        rc = main(["record", "--scenario", "crossed", "--mode", "off",
                   "--out", str(tmp_path / "x.jsonl")])
        assert rc == 2
