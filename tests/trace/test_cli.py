"""CLI tests: the four ``python -m repro.trace`` subcommands."""

from __future__ import annotations

import pytest

from repro.trace.cli import main
from repro.trace.codec import load_trace


class TestGen:
    def test_smoke_grid_passes(self, capsys):
        assert main(["gen", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenarios verified" in out
        assert "FAIL" not in out

    def test_writes_corpus_files(self, tmp_path, capsys):
        rc = main([
            "gen", "--out", str(tmp_path), "--families", "cycle",
            "--cycle-lens", "2,3", "--fan-outs", "1", "--sites", "1",
            "--rounds", "1", "--codec", "both",
        ])
        assert rc == 0
        files = sorted(tmp_path.iterdir())
        # 2 cycle-lens x 1 x 1 x 1 x 2 verdicts x 2 codecs
        assert len(files) == 8
        assert load_trace(files[0]).records

    def test_writes_churn_family(self, tmp_path, capsys):
        rc = main([
            "gen", "--out", str(tmp_path), "--families", "churn",
            "--sites", "1", "--codec", "jsonl",
        ])
        assert rc == 0
        files = sorted(tmp_path.iterdir())
        assert files and all(f.name.startswith("churn-") for f in files)
        assert load_trace(files[0]).records

    def test_rejects_unknown_family(self, capsys):
        assert main(["gen", "--smoke", "--families", "nope"]) == 1

    def test_gen_without_out_or_smoke_fails(self, capsys):
        assert main(["gen"]) == 2


class TestReplayAndStats:
    @pytest.fixture()
    def corpus_file(self, tmp_path):
        main(["gen", "--out", str(tmp_path), "--cycle-lens", "2",
              "--fan-outs", "1", "--sites", "1", "--rounds", "1",
              "--codec", "jsonl"])
        return next(p for p in tmp_path.iterdir() if p.name.endswith("-dl.jsonl"))

    def test_replay_prints_report_and_throughput(self, corpus_file, capsys):
        assert main(["replay", str(corpus_file)]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "barrier deadlock detected" in out

    def test_replay_flags(self, corpus_file, capsys):
        assert main(["replay", str(corpus_file), "--model", "wfg",
                     "--check-every", "4"]) == 0
        assert "deadlock" in capsys.readouterr().out

    def test_stats_summarises(self, corpus_file, capsys):
        assert main(["stats", str(corpus_file)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out and "block" in out

    def test_verdict_mismatch_fails(self, tmp_path, capsys):
        """A trace whose meta promises a deadlock must produce one."""
        from repro.trace.codec import save_trace
        from repro.trace.corpus import ScenarioSpec, scenario_trace
        from repro.trace.events import Trace, TraceHeader

        honest = scenario_trace(
            ScenarioSpec(cycle_len=2, fan_out=1, deadlock=False)
        )
        lying = Trace(
            header=TraceHeader(meta={"expect_deadlock": True}),
            records=honest.records,
        )
        path = save_trace(lying, tmp_path / "lying.jsonl")
        assert main(["replay", str(path)]) == 1
        assert "MISMATCH" in capsys.readouterr().err


class TestRecord:
    def test_record_barrier_off_then_replay(self, tmp_path, capsys):
        out = tmp_path / "bar.jsonl"
        assert main(["record", "--scenario", "barrier", "--mode", "off",
                     "--out", str(out)]) == 0
        assert main(["replay", str(out)]) == 0
        assert "no deadlock found" in capsys.readouterr().out

    def test_record_crossed_detection_then_replay(self, tmp_path, capsys):
        out = tmp_path / "crossed.trace"
        assert main(["record", "--scenario", "crossed", "--out", str(out)]) == 0
        assert main(["replay", str(out)]) == 0
        assert "barrier deadlock detected" in capsys.readouterr().out

    def test_deadlocking_scenario_needs_verification(self, tmp_path, capsys):
        rc = main(["record", "--scenario", "crossed", "--mode", "off",
                   "--out", str(tmp_path / "x.jsonl")])
        assert rc == 2


class TestIncrementalFlag:
    def test_single_file_incremental(self, tmp_path, capsys):
        main(["gen", "--out", str(tmp_path), "--cycle-lens", "2",
              "--fan-outs", "1", "--sites", "1", "--rounds", "1",
              "--codec", "jsonl", "--families", "cycle"])
        capsys.readouterr()
        path = next(p for p in tmp_path.iterdir()
                    if p.name.endswith("-dl.jsonl"))
        assert main(["replay", str(path), "--incremental"]) == 0
        assert "barrier deadlock detected" in capsys.readouterr().out

    def test_corpus_incremental_stdout_matches_scratch(self, tmp_path, capsys):
        main(["gen", "--out", str(tmp_path), "--cycle-lens", "2,3",
              "--fan-outs", "1", "--sites", "1,2", "--rounds", "1",
              "--codec", "jsonl", "--families", "cycle,knot,bounded"])
        capsys.readouterr()
        assert main(["replay", str(tmp_path)]) == 0
        scratch = capsys.readouterr().out
        assert main(["replay", str(tmp_path), "--incremental"]) == 0
        assert capsys.readouterr().out == scratch


class TestBufferedCorpusTiming:
    def test_timing_goes_to_stderr_once_after_merge(self, tmp_path, capsys):
        """One timing line per file plus the total, in work-list order,
        for any --parallel value — emitted as a single buffered write so
        worker stderr cannot interleave mid-line."""
        main(["gen", "--out", str(tmp_path), "--cycle-lens", "2,3",
              "--fan-outs", "1", "--sites", "1", "--rounds", "1",
              "--codec", "jsonl", "--families", "cycle"])
        capsys.readouterr()
        for parallel in ("1", "2"):
            assert main(["replay", str(tmp_path), "--parallel", parallel]) == 0
            out, err = capsys.readouterr()
            timing = [l for l in err.splitlines() if l.startswith("timing: ")]
            files = sorted(p.name for p in tmp_path.iterdir())
            assert [l.split()[1].rstrip(":") for l in timing] == files
            assert err.splitlines()[-1].startswith("replayed ")
            assert "timing:" not in out

    def test_new_families_reach_gen(self, tmp_path, capsys):
        main(["gen", "--out", str(tmp_path), "--families", "bounded,knot",
              "--codec", "jsonl"])
        out = capsys.readouterr().out
        names = {p.name for p in tmp_path.iterdir()}
        assert any(n.startswith("bounded-") for n in names)
        assert any(n.startswith("knot-") for n in names)
        assert "wrote" in out
