"""Codec tests: JSONL ↔ binary round-trips and malformed-input rejection."""

from __future__ import annotations

import pytest

from repro.core.events import BlockedStatus, Event
from repro.trace import events as ev
from repro.trace.codec import (
    BINARY_MAGIC,
    codec_for,
    dumps,
    load_trace,
    loads,
    save_trace,
)
from repro.trace.corpus import ScenarioSpec, scenario_trace
from repro.trace.events import (
    Trace,
    TraceFormatError,
    TraceHeader,
    TRACE_VERSION,
)


def sample_trace(sites: int = 1) -> Trace:
    """A trace exercising every record kind (publishes need sites=2)."""
    return scenario_trace(
        ScenarioSpec(cycle_len=3, fan_out=2, sites=sites, rounds=2, deadlock=True)
    )


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["jsonl", "binary"])
    @pytest.mark.parametrize("sites", [1, 2])
    def test_in_memory_round_trip(self, codec, sites):
        trace = sample_trace(sites)
        restored = loads(dumps(trace, codec))
        assert restored.header == trace.header
        assert restored.records == trace.records

    def test_jsonl_and_binary_agree(self):
        """The two codecs decode to the very same record stream."""
        trace = sample_trace(2)
        via_jsonl = loads(dumps(trace, "jsonl"))
        via_binary = loads(dumps(trace, "binary"))
        assert via_jsonl.records == via_binary.records
        assert via_jsonl.header == via_binary.header

    def test_binary_is_smaller(self):
        trace = sample_trace(2)
        assert len(dumps(trace, "binary")) < len(dumps(trace, "jsonl"))

    @pytest.mark.parametrize("name,codec", [("t.jsonl", "jsonl"), ("t.trace", "binary"), ("t.bin", "binary")])
    def test_file_round_trip_by_extension(self, tmp_path, name, codec):
        trace = sample_trace()
        path = save_trace(trace, tmp_path / name)
        assert codec_for(path).name == codec
        restored = load_trace(path)
        assert restored.records == trace.records

    def test_all_record_kinds_survive(self):
        trace = sample_trace(2)
        kinds = {r.kind for r in loads(dumps(trace, "binary"))}
        assert ev.RecordKind.PUBLISH_DELTA in kinds
        local = loads(dumps(sample_trace(1), "binary"))
        assert {r.kind for r in local} >= {
            ev.RecordKind.BLOCK,
            ev.RecordKind.UNBLOCK,
            ev.RecordKind.REGISTER,
            ev.RecordKind.ADVANCE,
        }

    @pytest.mark.parametrize("codec", ["jsonl", "binary"])
    def test_legacy_publish_records_round_trip(self, codec):
        """The bucket-protocol record kind survives both codecs — old
        recordings must keep replaying under the delta protocol era."""
        payload = {
            "t1": {"waits": [["p", 1]], "registered": {"p": 1}, "generation": 3}
        }
        trace = Trace(
            header=TraceHeader(meta={}),
            records=(ev.publish(0, "siteA", payload),),
        )
        restored = loads(dumps(trace, codec))
        assert restored.records == trace.records

    @pytest.mark.parametrize("codec", ["jsonl", "binary"])
    @pytest.mark.parametrize("kind", ["delta", "snapshot"])
    def test_publish_delta_round_trip(self, codec, kind):
        blobs = {
            "t1": {"waits": [["p", 1]], "registered": {"p": 1}, "generation": 3}
        }
        payload = {
            "v": 1,
            "stream": "st1",
            "seq": 4,
            "kind": kind,
            "set": blobs,
            "restore": {} if kind == "snapshot" else {
                "t2": {"waits": [["q", 2]], "registered": {}, "generation": 9}
            },
            "clear": [] if kind == "snapshot" else ["t3"],
        }
        trace = Trace(
            header=TraceHeader(meta={}),
            records=(ev.publish_delta(0, "siteA", payload),),
        )
        restored = loads(dumps(trace, codec))
        assert restored.records == trace.records
        assert restored.records[0].payload == payload

    def test_status_fidelity(self):
        status = BlockedStatus(
            waits=frozenset({Event("p", 3), Event("q", 1)}),
            registered={"p": 3, "q": 0, "r": 7},
            generation=42,
        )
        trace = Trace(
            header=TraceHeader(meta={"k": "v"}),
            records=(ev.block(0, "t1", status),),
        )
        for codec in ("jsonl", "binary"):
            restored = loads(dumps(trace, codec)).records[0].status
            assert restored == status


class TestMalformedInput:
    def test_empty_file(self):
        with pytest.raises(TraceFormatError):
            loads(b"")

    def test_bad_jsonl_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            loads(b'{"version": 1}\n')

    def test_unparseable_json_line(self):
        good = dumps(sample_trace(), "jsonl")
        with pytest.raises(TraceFormatError):
            loads(good + b"{not json}\n")

    def test_unsupported_version(self):
        with pytest.raises(TraceFormatError, match="version"):
            loads(b'{"magic":"armus-trace","version":99,"meta":{}}\n')

    def test_record_missing_fields(self):
        header = b'{"magic":"armus-trace","version":%d,"meta":{}}\n' % TRACE_VERSION
        with pytest.raises(TraceFormatError):
            loads(header + b'{"seq":0,"kind":"block"}\n')  # no task/status
        with pytest.raises(TraceFormatError):
            loads(header + b'{"seq":0,"kind":"nonsense","task":"t"}\n')

    def test_truncated_binary(self):
        data = dumps(sample_trace(), "binary")
        with pytest.raises(TraceFormatError):
            loads(data[: len(data) - 3])

    def test_binary_bad_magic(self):
        data = dumps(sample_trace(), "binary")
        # Valid JSONL magic is absent too, so the JSONL path rejects it.
        with pytest.raises(TraceFormatError):
            loads(b"XXXXXXXX" + data[8:])

    def test_binary_unknown_tag(self):
        trace = Trace(header=TraceHeader(), records=(ev.unblock(0, "t"),))
        data = bytearray(dumps(trace, "binary"))
        # The record frame is [len][tag][seq][strlen]['t']; the tag byte
        # sits 4 bytes from the end.
        data[-4] = 0x7F
        with pytest.raises(TraceFormatError, match="tag"):
            loads(bytes(data))

    def test_binary_magic_prefix_only(self):
        with pytest.raises(TraceFormatError):
            loads(BINARY_MAGIC)

    def test_negative_phase_rejected(self):
        header = b'{"magic":"armus-trace","version":%d,"meta":{}}\n' % TRACE_VERSION
        with pytest.raises(TraceFormatError):
            loads(header + b'{"seq":0,"kind":"advance","task":"t","phaser":"p","phase":-1}\n')

    def test_unknown_codec_name(self):
        with pytest.raises(TraceFormatError, match="codec"):
            codec_for("x.jsonl", codec="msgpack")

    def test_malformed_publish_payload_rejected_at_load(self):
        """A publish blob missing its status fields must fail at load
        time, not as a KeyError in the middle of a replay."""
        header = b'{"magic":"armus-trace","version":%d,"meta":{}}\n' % TRACE_VERSION
        with pytest.raises(TraceFormatError):
            loads(header + b'{"seq":0,"kind":"publish","site":"s","payload":{"t":{}}}\n')
        with pytest.raises(TraceFormatError):
            loads(header + b'{"seq":0,"kind":"publish","site":"s","payload":"oops"}\n')


class TestDeltaPayloadValidation:
    def header(self):
        return b'{"magic":"armus-trace","version":%d,"meta":{}}\n' % TRACE_VERSION

    @pytest.mark.parametrize("version", [0, -1, 99])
    def test_out_of_range_protocol_version_rejected_at_load(self, version):
        line = (
            b'{"seq":0,"kind":"publish_delta","site":"s","payload":'
            b'{"v":%d,"stream":"x","seq":1,"kind":"snapshot",'
            b'"set":{},"restore":{},"clear":[]}}\n' % version
        )
        with pytest.raises(TraceFormatError, match="version"):
            loads(self.header() + line)

    def test_snapshot_with_delta_ops_rejected_at_load(self):
        line = (
            b'{"seq":0,"kind":"publish_delta","site":"s","payload":'
            b'{"v":1,"stream":"x","seq":1,"kind":"snapshot",'
            b'"set":{},"restore":{},"clear":["t"]}}\n'
        )
        with pytest.raises(TraceFormatError, match="snapshot"):
            loads(self.header() + line)


class TestTraceContextOnWire:
    """The optional delta ``trace`` field: round-trips in both codecs,
    but only protocol v2+ payloads may carry it."""

    def payload(self, v=2, trace=None):
        obj = {
            "v": v,
            "stream": "st1",
            "seq": 4,
            "kind": "snapshot",
            "set": {
                "t1": {
                    "waits": [["p", 1]],
                    "registered": {"p": 1},
                    "generation": 3,
                }
            },
            "restore": {},
            "clear": [],
        }
        if trace is not None:
            obj["trace"] = trace
        return obj

    @pytest.mark.parametrize("codec", ["jsonl", "binary"])
    def test_trace_field_round_trips(self, codec):
        payload = self.payload(trace={"span": "deadbeefdeadbeef"})
        trace = Trace(
            header=TraceHeader(meta={}),
            records=(ev.publish_delta(0, "siteA", payload),),
        )
        restored = loads(dumps(trace, codec))
        assert restored.records == trace.records
        assert restored.records[0].payload["trace"] == {
            "span": "deadbeefdeadbeef"
        }

    def test_jsonl_and_binary_agree_with_trace_field(self):
        payload = self.payload(trace={"span": "deadbeefdeadbeef"})
        trace = Trace(
            header=TraceHeader(meta={}),
            records=(ev.publish_delta(0, "siteA", payload),),
        )
        assert loads(dumps(trace, "jsonl")).records == loads(
            dumps(trace, "binary")
        ).records

    def test_v1_payload_with_trace_rejected(self):
        # Validation happens where the wire object is interpreted —
        # the load path — so drive delta_payload_from_obj directly.
        with pytest.raises(TraceFormatError, match="version >= 2"):
            ev.delta_payload_from_obj(self.payload(v=1, trace={"span": "ab"}))

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-mapping",
            {"span": ["list", "value"]},
            {"span": {"nested": 1}},
        ],
    )
    def test_malformed_trace_context_rejected(self, bad):
        with pytest.raises(TraceFormatError, match="trace context"):
            ev.delta_payload_from_obj(self.payload(trace=bad))
