"""Corpus generator tests: grid coverage, ground truth, prefix safety."""

from __future__ import annotations

import pytest

from repro.trace.codec import load_trace
from repro.trace.corpus import (
    ScenarioSpec,
    SMOKE_GRID,
    generate_corpus,
    grid_specs,
    scenario_trace,
    verify_corpus,
    write_corpus,
)
from repro.trace.events import RecordKind
from repro.trace.replay import replay


class TestSpecs:
    def test_grid_is_the_cross_product(self):
        specs = grid_specs((2, 3), (1, 2), (1,), (0, 1), (True, False))
        assert len(specs) == 2 * 2 * 1 * 2 * 2
        assert len({s.name for s in specs}) == len(specs)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(cycle_len=1)
        with pytest.raises(ValueError):
            ScenarioSpec(fan_out=0)
        with pytest.raises(ValueError):
            ScenarioSpec(sites=0)

    def test_task_count_is_cycle_times_fanout(self):
        assert ScenarioSpec(cycle_len=4, fan_out=3).n_tasks == 12


class TestGroundTruth:
    def test_smoke_grid_verifies(self):
        specs = grid_specs(
            SMOKE_GRID["cycle_lens"],
            SMOKE_GRID["fan_outs"],
            SMOKE_GRID["site_counts"],
            SMOKE_GRID["rounds"],
            SMOKE_GRID["verdicts"],
        )
        results = verify_corpus(specs)
        assert all(ok for _, ok in results)

    def test_deadlock_appears_only_when_the_knot_closes(self):
        """Prefix safety: the knot closes at the closing group's *first*
        block (its fan-out siblings repeat the same cycle edge); every
        earlier prefix is deadlock-free."""
        fan_out = 2
        trace = scenario_trace(
            ScenarioSpec(cycle_len=3, fan_out=fan_out, sites=1, rounds=2)
        )
        assert replay(trace).deadlocked
        # Drop the whole closing group (one block + one advance each).
        assert not replay(trace.records[: -2 * fan_out]).deadlocked
        # One sibling's block back in: the cycle exists again.
        assert replay(trace.records[: -2 * fan_out + 2]).deadlocked

    def test_meta_is_self_describing(self):
        spec = ScenarioSpec(cycle_len=3, fan_out=2, sites=2, rounds=1,
                            deadlock=False)
        meta = scenario_trace(spec).header.meta
        assert meta["expect_deadlock"] is False
        assert meta["cycle_len"] == 3 and meta["tasks"] == 6
        assert meta["scenario"] == spec.name

    def test_warmup_rounds_add_clean_bulk(self):
        small = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, rounds=0))
        big = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, rounds=10))
        assert len(big) > len(small)
        # The extra events change no verdict.
        assert replay(small).deadlocked and replay(big).deadlocked

    def test_generation_is_deterministic(self):
        spec = ScenarioSpec(cycle_len=3, fan_out=2, sites=2, rounds=2)
        assert scenario_trace(spec).records == scenario_trace(spec).records


class TestTenThousandEventCorpus:
    def test_10k_event_corpus_round_trips_deterministically(self, tmp_path):
        """The acceptance criterion: gen + replay round-trips a 10k-event
        corpus deterministically, under both codecs."""
        specs = [
            ScenarioSpec(cycle_len=4, fan_out=4, sites=1, rounds=160),
            ScenarioSpec(cycle_len=4, fan_out=4, sites=2, rounds=60),
        ]
        traces = generate_corpus(specs)
        total = sum(len(t) for t in traces)
        assert total >= 10_000
        paths = write_corpus(tmp_path, specs, codecs=("jsonl", "binary"))
        by_spec = {}
        for path in paths:
            trace = load_trace(path)
            key = trace.header.meta["scenario"]
            # Both codec files decode to the identical record stream...
            if key in by_spec:
                assert trace.records == by_spec[key]
            else:
                by_spec[key] = trace.records
            # ...and replay deterministically to the expected verdict
            # (cadence > 1 keeps the 10k-event replay fast).
            first = replay(trace, check_every=16)
            second = replay(trace, check_every=16)
            assert first.reports == second.reports
            assert first.deadlocked == trace.header.meta["expect_deadlock"]


class TestWrittenCorpus:
    def test_write_corpus_emits_both_codecs(self, tmp_path):
        specs = [ScenarioSpec(cycle_len=2, fan_out=1, sites=1)]
        paths = write_corpus(tmp_path, specs)
        suffixes = {p.suffix for p in paths}
        assert suffixes == {".jsonl", ".trace"}
        a, b = (load_trace(p) for p in paths)
        assert a.records == b.records

    def test_distributed_corpus_has_publish_deltas_only(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=2))
        kinds = trace.kind_counts()
        assert kinds.get("publish_delta", 0) > 0
        assert "publish" not in kinds  # the bucket protocol is retired
        assert "block" not in kinds and "unblock" not in kinds
        assert kinds.get("register", 0) > 0  # context survives distribution

    def test_distributed_corpus_streams_open_with_snapshots(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=2))
        first_kind_per_site = {}
        for rec in trace:
            if rec.site is not None and rec.site not in first_kind_per_site:
                first_kind_per_site[rec.site] = rec.payload["kind"]
        assert set(first_kind_per_site.values()) == {"snapshot"}


class TestAioFamily:
    def test_spec_validation_and_names(self):
        from repro.trace.corpus import AioSpec

        assert AioSpec(tasks=1000, shape="cycle").name == "aio-cycle-N1000-dl"
        assert (
            AioSpec(tasks=128, shape="churn", deadlock=False).name
            == "aio-churn-N128-ok"
        )
        with pytest.raises(ValueError):
            AioSpec(tasks=1, shape="cycle")
        with pytest.raises(ValueError):
            AioSpec(tasks=10, shape="ring")

    def test_header_marks_the_backend(self):
        from repro.trace.corpus import AioSpec, aio_trace

        meta = aio_trace(AioSpec(tasks=16, shape="cycle")).header.meta
        assert meta["family"] == "aio"
        assert meta["backend"] == "asyncio"
        assert meta["tasks"] == 16
        assert meta["expect_deadlock"] is True

    @pytest.mark.parametrize("shape", ["cycle", "churn"])
    @pytest.mark.parametrize("deadlock", [True, False])
    def test_ground_truth(self, shape, deadlock):
        from repro.trace.corpus import AioSpec, build_trace

        spec = AioSpec(tasks=32, shape=shape, deadlock=deadlock)
        assert replay(build_trace(spec)).deadlocked == deadlock

    def test_cycle_shape_scales_to_the_acceptance_floor(self):
        """The ISSUE's floor: a ≥1000-task scenario with a verified
        deadlock report — the generated twin of the live aio run."""
        from repro.trace.corpus import AioSpec, build_trace

        trace = build_trace(AioSpec(tasks=1000, shape="cycle"))
        tasks = {r.task for r in trace if r.task is not None}
        assert len(tasks) == 1000
        outcome = replay(trace)
        assert outcome.deadlocked
        assert len(outcome.reports[0].tasks) == 1000

    def test_churn_shape_slides_over_the_whole_pool(self):
        from repro.trace.corpus import AIO_CHURN_WINDOW, AioSpec, build_trace

        trace = build_trace(AioSpec(tasks=64, shape="churn", deadlock=False))
        registers = [r for r in trace if r.kind is RecordKind.REGISTER]
        assert len({r.task for r in registers}) == 64  # every task joined
        assert trace.header.meta["tasks"] == 64

    def test_grid_specs(self):
        from repro.trace.corpus import aio_grid_specs

        specs = aio_grid_specs((128, 1000))
        assert len(specs) == 8  # 2 counts x 2 shapes x 2 verdicts
        assert len({s.name for s in specs}) == 8


class TestBoundedFamily:
    def test_spec_validation_and_names(self):
        from repro.trace.corpus import BoundedSpec

        assert (
            BoundedSpec(stages=3, bound=2, rounds=1).name
            == "bounded-G3-B2-R1-S1-dl"
        )
        assert (
            BoundedSpec(stages=2, bound=1, rounds=0, sites=2,
                        deadlock=False).name
            == "bounded-G2-B1-R0-S2-ok"
        )
        with pytest.raises(ValueError):
            BoundedSpec(stages=1)
        with pytest.raises(ValueError):
            BoundedSpec(bound=0)

    @pytest.mark.parametrize("deadlock", [True, False])
    @pytest.mark.parametrize("sites", [1, 2])
    def test_ground_truth(self, deadlock, sites):
        from repro.trace.corpus import BoundedSpec, build_trace

        spec = BoundedSpec(stages=3, bound=2, rounds=2, sites=sites,
                           deadlock=deadlock)
        assert replay(build_trace(spec)).deadlocked == deadlock

    def test_bound_shows_in_the_signal_phases(self):
        """The producer runs exactly ``bound`` items ahead before the
        full-buffer wait — the bounded-phaser invariant, in the trace."""
        from repro.trace.corpus import BoundedSpec, build_trace

        bound, rounds = 3, 1
        trace = build_trace(BoundedSpec(stages=2, bound=bound, rounds=rounds))
        sig_advances = [
            r.phase for r in trace
            if r.kind is RecordKind.ADVANCE and r.phaser == "s0"
        ]
        assert max(sig_advances) == rounds + bound
        blocks = [r for r in trace if r.kind is RecordKind.BLOCK]
        final = blocks[-2]  # st0's full-buffer block
        assert final.status.registered["s0"] == rounds + bound
        assert final.status.registered["a0"] == rounds

    def test_deadlock_appears_only_when_the_ring_fills(self):
        """Prefix safety: the all-full knot closes at the last stage's
        block and never before."""
        from repro.trace.corpus import BoundedSpec, build_trace

        trace = build_trace(BoundedSpec(stages=4, bound=2, rounds=2))
        assert replay(trace).deadlocked
        assert not replay(trace.records[:-1]).deadlocked

    def test_consumers_do_not_impede_their_input_stream(self):
        """A consumer observes its input signal clock without
        registering on it (pure wait) — no spurious back edges."""
        from repro.trace.corpus import BoundedSpec, build_trace

        trace = build_trace(BoundedSpec(stages=2, bound=1, rounds=1))
        for rec in trace:
            if rec.kind is RecordKind.BLOCK:
                for event in rec.status.waits:
                    if str(event.phaser).startswith("s"):
                        assert event.phaser not in rec.status.registered or \
                            rec.status.registered[event.phaser] >= event.phase


class TestKnotFamily:
    def test_spec_validation_and_names(self):
        from repro.trace.corpus import KnotSpec

        assert KnotSpec(pairs=2, rounds=1).name == "knot-P2-R1-S1-dl"
        assert (
            KnotSpec(pairs=1, rounds=0, sites=2, deadlock=False).name
            == "knot-P1-R0-S2-ok"
        )
        with pytest.raises(ValueError):
            KnotSpec(pairs=0)

    @pytest.mark.parametrize("deadlock", [True, False])
    @pytest.mark.parametrize("sites", [1, 2])
    def test_ground_truth(self, deadlock, sites):
        from repro.trace.corpus import KnotSpec, build_trace

        spec = KnotSpec(pairs=2, rounds=2, sites=sites, deadlock=deadlock)
        assert replay(build_trace(spec)).deadlocked == deadlock

    def test_cycle_mixes_lock_and_barrier_edges(self):
        """The deadlock evidence must involve both resource kinds: the
        barrier event the holder awaits and the lock release event the
        waiter awaits."""
        from repro.trace.corpus import KnotSpec, build_trace

        outcome = replay(build_trace(KnotSpec(pairs=1, rounds=1)))
        assert outcome.deadlocked
        phasers = {str(e.phaser) for e in outcome.reports[0].events}
        assert "bar" in phasers
        assert "l0" in phasers

    def test_deadlock_closes_at_the_first_lock_wait(self):
        """Prefix safety: holders parked at the barrier are harmless
        until a non-arrived waiter goes for a held lock."""
        from repro.trace.corpus import KnotSpec, build_trace

        trace = build_trace(KnotSpec(pairs=2, rounds=1))
        blocks = [i for i, r in enumerate(trace.records)
                  if r.kind is RecordKind.BLOCK]
        first_waiter_block = blocks[-2]  # w0 (w1 repeats the knot)
        assert not replay(trace.records[:first_waiter_block]).deadlocked
        assert replay(trace.records[:first_waiter_block + 1]).deadlocked

    def test_lock_epochs_advance_through_the_warmup(self):
        from repro.trace.corpus import KnotSpec, build_trace

        trace = build_trace(KnotSpec(pairs=1, rounds=3))
        lock_advances = [r.phase for r in trace
                         if r.kind is RecordKind.ADVANCE and r.phaser == "l0"]
        assert lock_advances == [1, 2, 3]  # one release per round
