"""The ``explain`` subcommand: provenance output, pinned byte-for-byte.

``expected_explain.txt`` is the checked-in golden for explaining the
whole regression corpus; serial, ``--parallel``, ``--stream`` and
``--incremental`` runs must all reproduce it exactly (the same
determinism pin the replay golden carries, extended to provenance).
The single-file mode, ``--report`` selection and the ``--chrome``
export are covered directly.
"""

from __future__ import annotations

import json
import pathlib

from repro.trace.cli import main

CORPUS = pathlib.Path(__file__).parent / "corpus"
GOLDEN = CORPUS / "expected_explain.txt"
DL_MEMBER = CORPUS / "recorded-cluster-delta-dl.trace"
OK_MEMBER = CORPUS / "cycle-L3-F2-S1-R2-ok.jsonl"


class TestGoldenExplainOutput:
    def run_cli(self, capsys, *extra) -> str:
        assert main(["explain", str(CORPUS), *extra]) == 0
        return capsys.readouterr().out

    def test_serial_output_matches_golden(self, capsys):
        assert self.run_cli(capsys) == GOLDEN.read_text()

    def test_parallel_output_matches_golden(self, capsys):
        """The CI assertion, in-process: --parallel 2 is byte-identical."""
        assert self.run_cli(capsys, "--parallel", "2") == GOLDEN.read_text()

    def test_streamed_output_matches_golden(self, capsys):
        assert self.run_cli(capsys, "--stream") == GOLDEN.read_text()

    def test_incremental_output_matches_golden(self, capsys):
        """Both engines attach identical provenance — the corpus pin."""
        assert self.run_cli(capsys, "--incremental") == GOLDEN.read_text()

    def test_every_deadlock_member_is_explained(self, capsys):
        out = self.run_cli(capsys)
        # Every -dl member block is followed by a provenance rendering.
        for line in out.splitlines():
            if line.startswith("--- ") and "-dl." in line:
                assert not line.endswith(" 0 report(s)")
        assert "closed @record" in out and "waterfall (records" in out


class TestSingleTrace:
    def test_single_file_renders_provenance(self, capsys):
        assert main(["explain", str(DL_MEMBER)]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"trace: {DL_MEMBER}")
        assert "report 1: barrier deadlock detected" in out
        assert "publish_delta @record" in out  # distributed origins
        assert "detection lag" in out

    def test_ok_trace_reports_nothing(self, capsys):
        assert main(["explain", str(OK_MEMBER)]) == 0
        out = capsys.readouterr().out
        assert "no deadlock found" in out

    def test_report_selector(self, capsys):
        assert main(["explain", str(DL_MEMBER), "--report", "1"]) == 0
        out = capsys.readouterr().out
        assert "report 1:" in out

    def test_report_selector_out_of_range(self, capsys):
        assert main(["explain", str(DL_MEMBER), "--report", "9"]) == 1
        assert "no report #9" in capsys.readouterr().err

    def test_chrome_export_validates(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["explain", str(DL_MEMBER), "--chrome", str(out_path)]) == 0
        from repro.obs.tracing import validate_chrome_trace

        doc = json.loads(out_path.read_text())
        validate_chrome_trace(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "deadlock.report" in names and "site.publish_delta" in names

    def test_chrome_rejected_for_corpus_input(self, tmp_path, capsys):
        rc = main(["explain", str(CORPUS), "--chrome", str(tmp_path / "x.json")])
        assert rc == 2
        assert "single trace" in capsys.readouterr().err


class TestCorpusSelectors:
    def test_corpus_report_selector_skips_memberless(self, capsys):
        assert main(["explain", str(CORPUS), "--report", "1"]) == 0
        out = capsys.readouterr().out
        # ok-members print their header but no provenance block.
        assert "--- " in out and "report 1:" in out

    def test_missing_input_fails(self, capsys):
        assert main(["explain", "does-not-exist/"]) == 1
        assert "no such file" in capsys.readouterr().err
