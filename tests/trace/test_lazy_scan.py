"""The zero-copy codec scan and decode-on-demand records.

Three layers of pins:

* :meth:`BinaryCodec.scan_frames` — frame slicing without copying or
  decoding: slices reproduce the framed bodies exactly, truncation is
  loud.
* :class:`LazyRecord` / :meth:`BinaryCodec.lazy_record` — ``kind`` and
  ``seq`` come for free; nothing else is decoded until a field is
  touched; unknown tags and empty frames still fail at scan time.
* :meth:`StreamedTrace.lazy_records` and the replay engines — lazy
  iteration yields the same logical records as eager loading, replay
  results are unchanged, and the engines really do skip decoding the
  register/advance context frames (the point of the fast path).
"""

from __future__ import annotations

import pytest

from repro.trace import codec as codec_mod
from repro.trace.codec import CODECS, LazyRecord, TraceFormatError, dumps
from repro.trace.corpus import ScenarioSpec, build_trace
from repro.trace.events import RecordKind
from repro.trace.replay import replay
from repro.trace.stream import iter_load

BINARY = CODECS["binary"]

SPEC = ScenarioSpec(cycle_len=3, fan_out=2, sites=1, rounds=2, deadlock=False)
SPEC_DL = ScenarioSpec(cycle_len=2, fan_out=1, sites=1, rounds=1, deadlock=True)


@pytest.fixture(scope="module")
def trace():
    return build_trace(SPEC)


@pytest.fixture(scope="module")
def blob(trace):
    return dumps(trace, "binary")


def frames_of(blob):
    """Scan past the header the same way BinaryCodec.load does."""
    pos = len(codec_mod.BINARY_MAGIC) + 1
    _, pos = codec_mod._read_str(memoryview(blob), pos)
    return BINARY.scan_frames(blob, pos), pos


class TestScanFrames:
    def test_slices_are_zero_copy_views(self, blob):
        frames, _ = frames_of(blob)
        first = next(frames)
        assert isinstance(first, memoryview)
        assert first.obj is blob  # a view of the original buffer

    def test_scan_decodes_to_eager_records(self, trace, blob):
        frames, _ = frames_of(blob)
        decoded = [BINARY.decode_record_frame(body) for body in frames]
        assert tuple(decoded) == trace.records

    def test_truncated_frame_raises(self, blob):
        frames, _ = frames_of(blob[:-3])
        with pytest.raises(TraceFormatError, match="truncated frame"):
            list(frames)

    def test_empty_buffer_yields_nothing(self):
        assert list(BINARY.scan_frames(b"")) == []


class TestLazyRecord:
    def test_kind_and_seq_without_decoding(self, monkeypatch, blob):
        calls = []
        real = BINARY.decode_record_frame
        monkeypatch.setattr(
            type(BINARY), "decode_record_frame",
            lambda self, body: calls.append(1) or real(body),
        )
        frames, _ = frames_of(blob)
        lazies = [BINARY.lazy_record(body) for body in frames]
        kinds = [(rec.kind, rec.seq) for rec in lazies]
        assert not calls, "kind/seq access must not decode the frame"
        assert all(isinstance(k, RecordKind) for k, _ in kinds)
        assert [s for _, s in kinds] == sorted(s for _, s in kinds)

    def test_field_access_materialises_once(self, trace, blob):
        frames, _ = frames_of(blob)
        body = next(frames)
        lazy = BINARY.lazy_record(body)
        eager = trace.records[0]
        assert lazy.kind is eager.kind
        assert lazy.task == eager.task  # triggers materialisation
        assert lazy.materialize() is lazy.materialize()  # cached
        assert lazy.materialize() == eager

    def test_unknown_tag_raises_at_scan_time(self):
        with pytest.raises(TraceFormatError, match="unknown record tag"):
            BINARY.lazy_record(memoryview(b"\xfe\x01"))

    def test_empty_frame_raises(self):
        with pytest.raises(TraceFormatError, match="empty frame"):
            BINARY.lazy_record(memoryview(b""))

    def test_repr_does_not_crash(self, blob):
        frames, _ = frames_of(blob)
        assert "LazyRecord" in repr(BINARY.lazy_record(next(frames)))


class TestLazyStream:
    @pytest.mark.parametrize("spec", [SPEC, SPEC_DL], ids=lambda s: s.name)
    def test_lazy_records_match_eager_iteration(self, tmp_path, spec):
        trace = build_trace(spec)
        path = tmp_path / "t.trace"
        path.write_bytes(dumps(trace, "binary"))
        stream = iter_load(path)
        lazy = list(stream.lazy_records())
        assert [type(r) for r in lazy] == [LazyRecord] * len(trace.records)
        assert tuple(r.materialize() for r in lazy) == trace.records
        # plain iteration still yields eager records, unchanged
        assert tuple(iter_load(path)) == trace.records

    def test_lazy_records_on_jsonl_falls_back_to_eager(self, tmp_path):
        trace = build_trace(SPEC)
        path = tmp_path / "t.jsonl"
        path.write_bytes(dumps(trace, "jsonl"))
        lazy = tuple(iter_load(path).lazy_records())
        assert lazy == trace.records  # no framing to scan: real records

    @pytest.mark.parametrize("spec", [SPEC, SPEC_DL], ids=lambda s: s.name)
    @pytest.mark.parametrize("incremental", [False, True],
                             ids=["classic", "incremental"])
    def test_replay_over_lazy_stream_matches_eager(
        self, tmp_path, spec, incremental
    ):
        trace = build_trace(spec)
        path = tmp_path / "t.trace"
        path.write_bytes(dumps(trace, "binary"))
        eager = replay(trace, check_every=1, incremental=incremental)
        streamed = replay(
            iter_load(path), check_every=1, incremental=incremental
        )
        assert streamed.reports == eager.reports
        assert streamed.checks_run == eager.checks_run
        assert streamed.records_processed == eager.records_processed

    def test_replay_skips_decoding_context_frames(
        self, monkeypatch, tmp_path
    ):
        """The laziness payoff, pinned: replaying a streamed binary
        trace materialises only the records the engine inspects —
        register/advance context frames stay undecoded."""
        trace = build_trace(SPEC)
        path = tmp_path / "t.trace"
        path.write_bytes(dumps(trace, "binary"))
        context = sum(
            1 for r in trace.records
            if r.kind in (RecordKind.REGISTER, RecordKind.ADVANCE)
        )
        assert context > 0, "scenario produced no context records"
        decoded = []
        real = type(BINARY).decode_record_frame
        monkeypatch.setattr(
            type(BINARY), "decode_record_frame",
            lambda self, body: decoded.append(1) or real(self, body),
        )
        result = replay(iter_load(path), check_every=1)
        assert result.records_processed == len(trace.records)
        assert len(decoded) == len(trace.records) - context
