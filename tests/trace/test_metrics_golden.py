"""The pinned corpus metrics snapshot and its determinism guarantees.

``tests/trace/corpus/expected_metrics.txt`` is the canonical-JSON
metrics snapshot of a corpus replay (``--metrics-json``).  The snapshot
is the *non-volatile* slice of the merged registry, which makes it a
pure function of the trace bytes: the tests assert byte-identity
serially, under ``--parallel N`` (merge is order-insensitive and every
worker process sees a different string-hash seed) and across repeated
runs.  Report output must be unaffected by metrics emission.

Regenerating after an intentional change::

    PYTHONPATH=src python -m repro.trace replay tests/trace/corpus \
        --metrics-json tests/trace/corpus/expected_metrics.txt \
        > /dev/null 2>&1
"""

from __future__ import annotations

import json
import pathlib

from repro.trace.cli import main

CORPUS = pathlib.Path(__file__).parent / "corpus"
GOLDEN_REPLAY = CORPUS / "expected_replay.txt"
GOLDEN_METRICS = CORPUS / "expected_metrics.txt"


def run_metrics_json(tmp_path, *extra) -> bytes:
    out = tmp_path / "metrics.json"
    assert main(["replay", str(CORPUS), "--metrics-json", str(out), *extra]) == 0
    return out.read_bytes()


class TestMetricsGolden:
    def test_serial_matches_golden(self, tmp_path, capsys):
        assert run_metrics_json(tmp_path) == GOLDEN_METRICS.read_bytes()

    def test_parallel_matches_golden(self, tmp_path, capsys):
        """The acceptance pin: worker processes have different hash
        seeds, yet the merged snapshot is byte-identical to serial."""
        assert (
            run_metrics_json(tmp_path, "--parallel", "2")
            == GOLDEN_METRICS.read_bytes()
        )

    def test_incremental_serial_and_parallel_agree(self, tmp_path, capsys):
        """The incremental engine adds its own series (so it has no
        shared golden with the from-scratch engine) but must obey the
        same serial/parallel byte-identity."""
        serial = run_metrics_json(tmp_path, "--incremental")
        out2 = tmp_path / "m2.json"
        assert main([
            "replay", str(CORPUS), "--incremental", "--parallel", "2",
            "--metrics-json", str(out2),
        ]) == 0
        assert serial == out2.read_bytes()

    def test_golden_is_canonical_json(self):
        text = GOLDEN_METRICS.read_text()
        snap = json.loads(text)
        assert text == json.dumps(snap, sort_keys=True, separators=(",", ":")) + "\n"
        names = [m["name"] for m in snap["metrics"]]
        assert names == sorted(names)
        assert "repro_replay_records_total" in names
        assert "repro_checks_total" in names
        # The volatile slice stays out of the deterministic snapshot.
        assert not any(m["volatile"] for m in snap["metrics"])
        assert "repro_check_duration_seconds" not in names


class TestMetricsDoNotPerturbReports:
    def test_replay_stdout_unchanged_with_metrics_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["replay", str(CORPUS), "--metrics-json", str(out)]) == 0
        assert capsys.readouterr().out == GOLDEN_REPLAY.read_text()

    def test_metrics_stdout_appends_after_reports(self, capsys):
        assert main(["replay", str(CORPUS), "--metrics-stdout"]) == 0
        text = capsys.readouterr().out
        assert text.startswith(GOLDEN_REPLAY.read_text())
        trailing = text[len(GOLDEN_REPLAY.read_text()):]
        assert json.loads(trailing)["v"] == 1
