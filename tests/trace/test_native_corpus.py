"""Full-corpus differential: compiled kernel vs pure Python.

The compiled core's acceptance bar is *byte-identity at the report
level*: with ``REPRO_NATIVE=require`` every checked-in golden —
replay (serial, parallel, sharded), explain, predict — must reproduce
the exact bytes the pure-Python engines produce, over both codecs, and
the incremental engine's report lists must match the pure run pointwise
per trace.  The whole module probe-skips on machines where the
extension was never built (the pure-Python CI leg).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core._native import NATIVE_ENV, native_available
from repro.trace.cli import main
from repro.trace.parallel import discover_traces
from repro.trace.replay import replay
from repro.trace.stream import iter_load

pytestmark = pytest.mark.skipif(
    not native_available(),
    reason="compiled kernel not built (run `python setup.py build_ext "
    "--inplace`)",
)

CORPUS = pathlib.Path(__file__).parent / "corpus"
GOLDEN_REPLAY = CORPUS / "expected_replay.txt"
GOLDEN_SHARDED = CORPUS / "expected_replay_sharded.txt"
GOLDEN_EXPLAIN = CORPUS / "expected_explain.txt"
GOLDEN_PREDICT = CORPUS / "expected_predict.txt"


def corpus_files():
    return discover_traces(CORPUS)


@pytest.fixture
def native_required(monkeypatch):
    monkeypatch.setenv(NATIVE_ENV, "require")


class TestPointwiseReports:
    """Per-trace, per-engine report equality: pure vs kernel."""

    @pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
    def test_incremental_reports_match_pure(self, monkeypatch, path):
        records = list(iter_load(path))
        monkeypatch.setenv(NATIVE_ENV, "0")
        pure = replay(records, check_every=1, incremental=True)
        monkeypatch.setenv(NATIVE_ENV, "require")
        compiled = replay(records, check_every=1, incremental=True)
        assert compiled.reports == pure.reports
        assert compiled.checks_run == pure.checks_run
        assert compiled.records_processed == pure.records_processed

    @pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
    def test_sharded_incremental_reports_match_pure(self, monkeypatch, path):
        records = list(iter_load(path))
        monkeypatch.setenv(NATIVE_ENV, "0")
        pure = replay(
            records, check_every=1, incremental=True, shard_components=True
        )
        monkeypatch.setenv(NATIVE_ENV, "require")
        compiled = replay(
            records, check_every=1, incremental=True, shard_components=True
        )
        assert compiled.reports == pure.reports


class TestGoldenBytesWithKernel:
    """The checked-in goldens, reproduced byte-for-byte with the kernel
    required.  The corpus holds every scenario family in both codecs,
    so one corpus pass covers jsonl and binary framing alike."""

    def run_cli(self, capsys, *argv) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_incremental_replay(self, native_required, capsys):
        out = self.run_cli(capsys, "replay", str(CORPUS), "--incremental")
        assert out == GOLDEN_REPLAY.read_text()

    def test_incremental_replay_parallel(self, native_required, capsys):
        out = self.run_cli(
            capsys, "replay", str(CORPUS), "--incremental", "--parallel", "2"
        )
        assert out == GOLDEN_REPLAY.read_text()

    def test_sharded_incremental_replay(self, native_required, capsys):
        out = self.run_cli(
            capsys, "replay", str(CORPUS), "--incremental",
            "--shard-components",
        )
        assert out == GOLDEN_SHARDED.read_text()

    def test_explain(self, native_required, capsys):
        out = self.run_cli(capsys, "explain", str(CORPUS), "--incremental")
        assert out == GOLDEN_EXPLAIN.read_text()

    def test_predict(self, native_required, capsys):
        out = self.run_cli(capsys, "predict", str(CORPUS))
        assert out == GOLDEN_PREDICT.read_text()
