"""Canonical identifier renaming (`repro.trace.normalize`)."""

from __future__ import annotations

import pytest

from repro.core.events import BlockedStatus, Event
from repro.trace import events as ev
from repro.trace.codec import dumps
from repro.trace.corpus import ChurnSpec, ScenarioSpec, build_trace
from repro.trace.events import Trace, TraceHeader
from repro.trace.normalize import canonical_trace
from repro.trace.replay import replay


def make_trace(task_a, task_b, res_p, res_q, site="siteX"):
    """The same little scenario under arbitrary identifier spellings."""
    status_a = BlockedStatus(
        waits=frozenset({Event(res_p, 1)}), registered={res_p: 1, res_q: 0}
    )
    records = (
        ev.register(0, task_a, res_p, 0),
        ev.register(1, task_a, res_q, 0),
        ev.register(2, task_b, res_p, 0),
        ev.advance(3, task_a, res_p, 1),
        ev.block(4, task_a, status_a),
        ev.publish(
            5,
            site,
            {task_b: {"waits": [[res_q, 1]], "registered": {res_q: 0}, "generation": 0}},
        ),
        ev.unblock(6, task_a),
    )
    return Trace(header=TraceHeader(meta={"scenario": "norm"}), records=records)


class TestCanonicalTrace:
    def test_renames_by_first_appearance(self):
        out = canonical_trace(make_trace("T17", "T4", "phaser#9", "lock#2"))
        assert [r.task for r in out.records[:3]] == ["t0", "t0", "t1"]
        assert out.records[0].phaser == "r0"
        assert out.records[1].phaser == "r1"
        assert out.records[5].site == "s0"
        assert set(out.records[5].payload) == {"t1"}

    def test_status_contents_renamed(self):
        out = canonical_trace(make_trace("T17", "T4", "phaser#9", "lock#2"))
        status = out.records[4].status
        assert status.waits == frozenset({Event("r0", 1)})
        assert dict(status.registered) == {"r0": 1, "r1": 0}

    def test_identifier_spelling_is_erased(self):
        """Two spellings of one scenario normalise to identical bytes."""
        first = make_trace("T1", "T2", "phaser#1", "phaser#2", site="place0")
        second = make_trace("T90", "T3", "clock#77", "phaser#5", site="place9")
        for codec in ("jsonl", "binary"):
            assert dumps(canonical_trace(first), codec) == dumps(
                canonical_trace(second), codec
            )

    def test_counter_offsets_are_erased(self):
        """A record introducing several unseen ids at once must rename
        them by *mint order*, not string order: phaser#9/phaser#10 in
        one process and phaser#2/phaser#3 in another (same behaviour,
        offset counters) must normalise identically — string sorting
        would swap the first pair ('phaser#10' < 'phaser#9')."""

        def lone_block(res_a, res_b):
            status = BlockedStatus(
                waits=frozenset({Event(res_a, 1)}),
                registered={res_a: 1, res_b: 0},
            )
            return Trace(
                header=TraceHeader(meta={}),
                records=(ev.block(0, "T1", status),),
            )

        low = canonical_trace(lone_block("phaser#2", "phaser#3"))
        high = canonical_trace(lone_block("phaser#9", "phaser#10"))
        assert low == high
        assert low.records[0].status.waits == frozenset({Event("r0", 1)})

    def test_idempotent(self):
        trace = make_trace("T17", "T4", "phaser#9", "lock#2")
        once = canonical_trace(trace)
        assert canonical_trace(once) == once

    @pytest.mark.parametrize(
        "spec",
        [
            ScenarioSpec(cycle_len=3, fan_out=2, sites=1, rounds=1),
            ScenarioSpec(cycle_len=2, fan_out=1, sites=2, rounds=1),
            ChurnSpec(pool=5, window=3, rounds=3),
        ],
        ids=lambda s: s.name,
    )
    def test_replay_verdict_invariant(self, spec):
        """Renaming must not change what the checker concludes."""
        trace = build_trace(spec)
        assert (
            replay(canonical_trace(trace)).deadlocked
            == replay(trace).deadlocked
            == spec.deadlock
        )

    def test_preserves_structure(self):
        trace = build_trace(ScenarioSpec(cycle_len=2, fan_out=1, rounds=1))
        out = canonical_trace(trace)
        assert len(out) == len(trace)
        assert [r.kind for r in out.records] == [r.kind for r in trace.records]
        assert [r.seq for r in out.records] == [r.seq for r in trace.records]
        assert dict(out.header.meta) == dict(trace.header.meta)

    def test_publish_delta_payloads_renamed(self):
        """Delta payloads: tasks/resources inside set/restore/clear are
        renamed; seq, kind and protocol version pass through."""
        from repro.trace.events import RecordKind

        trace = build_trace(
            ScenarioSpec(cycle_len=2, fan_out=1, sites=2, rounds=1)
        )
        out = canonical_trace(trace)
        deltas = [r for r in out.records if r.kind is RecordKind.PUBLISH_DELTA]
        assert deltas, "multi-site trace must carry deltas"
        originals = [
            r for r in trace.records if r.kind is RecordKind.PUBLISH_DELTA
        ]
        for rec, orig in zip(deltas, originals):
            assert rec.site.startswith("s")
            assert rec.payload["seq"] == orig.payload["seq"]
            assert rec.payload["kind"] == orig.payload["kind"]
            for section in ("set", "restore"):
                for task, blob in rec.payload[section].items():
                    assert task.startswith("t")
                    assert all(
                        p.startswith("r") for p, _ in blob["waits"]
                    )
            assert all(t.startswith("t") for t in rec.payload["clear"])
