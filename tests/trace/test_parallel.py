"""Parallel corpus replay and sharded checking: determinism above all."""

from __future__ import annotations

import pytest

from repro.core.checker import DeadlockChecker, snapshot_components
from repro.core.dependency import DependencySnapshot
from repro.core.events import BlockedStatus, Event
from repro.core.selection import GraphModel
from repro.trace.corpus import (
    ChurnSpec,
    ScenarioSpec,
    churn_grid_specs,
    grid_specs,
    verify_corpus,
    write_corpus,
)
from repro.trace.parallel import discover_traces, replay_corpus
from repro.trace.replay import replay


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A small mixed corpus (both families, both codecs, both verdicts)."""
    out = tmp_path_factory.mktemp("corpus")
    specs = grid_specs((2, 3), (1, 2), (1, 2), (1,), (True, False))
    specs += churn_grid_specs((5,), (3,), (3,), (1, 2), (True, False))
    write_corpus(out, specs)
    return out


class TestDiscovery:
    def test_directory_expansion_is_sorted(self, corpus_dir):
        paths = discover_traces(corpus_dir)
        assert paths == sorted(paths)
        assert all(p.suffix in (".jsonl", ".trace") for p in paths)

    def test_files_kept_and_deduplicated(self, corpus_dir):
        one = discover_traces(corpus_dir)[0]
        assert discover_traces([one, one, corpus_dir])[0] == one
        assert len(discover_traces([one, corpus_dir])) == len(
            discover_traces(corpus_dir)
        )

    def test_empty_corpus_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            replay_corpus(tmp_path)


class TestParallelEqualsSerial:
    def test_reports_and_stats_identical(self, corpus_dir):
        """The acceptance criterion: fan-out changes wall-clock only."""
        serial = replay_corpus(corpus_dir, processes=1)
        parallel = replay_corpus(corpus_dir, processes=4)
        assert [e.path for e in serial.entries] == [e.path for e in parallel.entries]
        assert [e.result.reports for e in serial.entries] == [
            e.result.reports for e in parallel.entries
        ]
        assert serial.records_processed == parallel.records_processed
        assert serial.checks_run == parallel.checks_run
        assert serial.stats.checks == parallel.stats.checks
        assert serial.stats.edges_total == parallel.stats.edges_total
        assert serial.stats.edges_max == parallel.stats.edges_max
        assert serial.stats.model_counts == parallel.stats.model_counts
        assert not serial.mismatches and not parallel.mismatches

    def test_streamed_parallel_agrees_too(self, corpus_dir):
        eager = replay_corpus(corpus_dir, processes=2)
        streamed = replay_corpus(corpus_dir, processes=2, stream=True)
        assert [e.result.reports for e in eager.entries] == [
            e.result.reports for e in streamed.entries
        ]

    def test_merged_stats_equal_sum_of_parts(self, corpus_dir):
        merged = replay_corpus(corpus_dir, processes=2)
        assert merged.stats.checks == sum(
            e.result.stats.checks for e in merged.entries
        )
        assert merged.stats.edges_total == sum(
            e.result.stats.edges_total for e in merged.entries
        )
        assert merged.stats.edges_max == max(
            e.result.stats.edges_max for e in merged.entries
        )

    def test_verdicts_match_ground_truth(self, corpus_dir):
        result = replay_corpus(corpus_dir, processes=2)
        for entry in result.entries:
            assert entry.expected is not None
            assert entry.result.deadlocked == entry.expected, entry.path.name

    def test_one_file_corpus_dir_stable_across_parallel(self, corpus_dir, tmp_path, capsys):
        """Corpus mode is a property of the input: a directory holding a
        single trace prints the same (corpus-format) stdout whatever
        --parallel says."""
        import shutil

        from repro.trace.cli import main

        solo = tmp_path / "solo"
        solo.mkdir()
        shutil.copy(discover_traces(corpus_dir)[0], solo)
        assert main(["replay", str(solo)]) == 0
        serial = capsys.readouterr().out
        assert main(["replay", str(solo), "--parallel", "4"]) == 0
        assert capsys.readouterr().out == serial
        assert serial.startswith("corpus: 1 trace(s)")

    def test_cli_stdout_byte_identical(self, corpus_dir, capsys):
        """End to end through the CLI: serial and parallel stdout diff
        empty (the CI regression-corpus job in miniature)."""
        from repro.trace.cli import main

        assert main(["replay", str(corpus_dir)]) == 0
        serial_out = capsys.readouterr().out
        assert main(["replay", str(corpus_dir), "--parallel", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "corpus:" in serial_out


class TestParallelVerify:
    def test_verify_corpus_parallel_equals_serial(self):
        specs = grid_specs((2,), (1, 2), (1,), (1,), (True, False))
        specs += churn_grid_specs((4,), (2,), (2,), (1,), (True, False))
        serial = verify_corpus(specs, processes=1)
        parallel = verify_corpus(specs, processes=2)
        assert serial == parallel
        assert all(ok for _, ok in parallel)


def status(waits, registered):
    return BlockedStatus(
        waits=frozenset(Event(p, n) for p, n in waits), registered=registered
    )


class TestShardedChecker:
    def make_snapshot(self):
        """Two disjoint crossed knots plus one innocuously blocked task."""
        return DependencySnapshot(
            statuses={
                "a1": status([("p", 1)], {"p": 1, "q": 0}),
                "a2": status([("q", 1)], {"p": 0, "q": 1}),
                "b1": status([("r", 1)], {"r": 1, "s": 0}),
                "b2": status([("s", 1)], {"r": 0, "s": 1}),
                "idle": status([("z", 1)], {"z": 1}),
            }
        )

    def test_components_partition_by_shared_phasers(self):
        shards = snapshot_components(self.make_snapshot())
        assert [sorted(s.statuses) for s in shards] == [
            ["a1", "a2"],
            ["b1", "b2"],
            ["idle"],
        ]

    def test_components_cover_snapshot_exactly(self):
        snapshot = self.make_snapshot()
        shards = snapshot_components(snapshot)
        union = {}
        for shard in shards:
            assert not (union.keys() & shard.statuses.keys())
            union.update(shard.statuses)
        assert union == dict(snapshot.statuses)

    def test_sharded_check_finds_every_component_deadlock(self):
        checker = DeadlockChecker()
        reports = checker.check_sharded(snapshot=self.make_snapshot())
        cycles = [r.cycle for r in reports]
        assert len(reports) == 2
        assert all(set(str(v) for v in c) for c in cycles)
        involved = sorted(t for r in reports for t in r.tasks)
        assert involved == ["a1", "a2", "b1", "b2"]

    def test_unsharded_check_agrees_on_single_component(self):
        snapshot = DependencySnapshot(
            statuses={
                "a1": status([("p", 1)], {"p": 1, "q": 0}),
                "a2": status([("q", 1)], {"p": 0, "q": 1}),
            }
        )
        # A two-task component is below the small-shard floor, so the
        # sharded check builds the WFG directly; compare against a
        # whole-snapshot check pinned to the same model.
        whole = DeadlockChecker(model=GraphModel.WFG).check(snapshot=snapshot)
        sharded = DeadlockChecker().check_sharded(snapshot=snapshot)
        assert sharded == [whole]

    def test_empty_snapshot_yields_no_reports(self):
        checker = DeadlockChecker()
        assert checker.check_sharded(snapshot=DependencySnapshot(statuses={})) == []

    def test_sharded_replay_equals_plain_on_corpus(self, corpus_dir):
        """On single-deadlock corpora sharding must not change *what*
        deadlocked — verdicts and involved tasks match — though small
        shards report WFG cycles where the whole-snapshot check chose
        the SG (per-shard model selection)."""
        plain = replay_corpus(corpus_dir, processes=1)
        sharded = replay_corpus(corpus_dir, processes=1, shard_components=True)
        for p_entry, s_entry in zip(plain.entries, sharded.entries):
            assert p_entry.result.deadlocked == s_entry.result.deadlocked
            assert len(p_entry.result.reports) == len(s_entry.result.reports)
            for p_rep, s_rep in zip(p_entry.result.reports, s_entry.result.reports):
                # A WFG report lists the cycle's tasks; the SG report
                # additionally sweeps in tasks waiting on the cycle's
                # events (fan-out siblings) — same deadlock either way.
                assert set(s_rep.tasks) <= set(p_rep.tasks) or set(
                    p_rep.tasks
                ) <= set(s_rep.tasks)

    def test_sharded_replay_reports_concurrent_deadlocks(self):
        """Two knots tied in one trace: plain detection reports the
        first cycle it meets; sharded detection reports both."""
        from repro.trace import events as ev

        records = []
        seq = 0
        for tasks, (x, y) in (( ("a1", "a2"), ("p", "q")),
                              (("b1", "b2"), ("r", "s"))):
            t1, t2 = tasks
            records.append(ev.block(seq, t1, status([(x, 1)], {x: 1, y: 0})))
            seq += 1
            records.append(ev.block(seq, t2, status([(y, 1)], {x: 0, y: 1})))
            seq += 1
        plain = replay(records, mode="detection")
        sharded = replay(records, mode="detection", shard_components=True)
        assert len(plain.reports) == 1
        assert len(sharded.reports) == 2
        assert {t for r in sharded.reports for t in r.tasks} == {
            "a1", "a2", "b1", "b2",
        }
