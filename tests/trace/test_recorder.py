"""Recorder tests: capturing live runs from every layer's hooks."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.checker import DeadlockChecker
from repro.core.events import waiting_on
from repro.distributed.store import InMemoryStore, ReplicatedStore
from repro.pl import programs
from repro.pl.interpreter import Interpreter
from repro.runtime.phaser import Phaser
from repro.trace.codec import load_trace
from repro.trace.events import RecordKind
from repro.trace.recorder import TraceRecorder


def run_crossed_deadlock(runtime, poll: bool = True):
    """Drive a deterministic two-task crossed-phaser deadlock.

    Blocks are serialised (t2 waits until t1's status is published), so
    the recorded stream — and hence the replayed analysis — is exactly
    reproducible.  Returns the two tasks.
    """
    ph1 = Phaser(runtime, register_self=False, name="p")
    ph2 = Phaser(runtime, register_self=False, name="q")
    gate = threading.Event()

    def await_blocked(count):
        deadline = time.monotonic() + 10
        while runtime.checker.dependency.blocked_count() < count:
            if runtime.reports:
                return
            assert time.monotonic() < deadline, "tasks never blocked"
            time.sleep(0.002)

    def first():
        gate.wait(10)
        ph1.arrive_and_await_advance()

    def second():
        gate.wait(10)
        await_blocked(1)
        ph2.arrive_and_await_advance()

    t1 = runtime.spawn(first, register=[ph1, ph2], name="t1")
    t2 = runtime.spawn(second, register=[ph1, ph2], name="t2")
    gate.set()
    await_blocked(2)
    if poll and not runtime.reports:
        runtime.monitor.poll_once()
    return t1, t2


def join_quietly(*tasks):
    for task in tasks:
        try:
            task.join(10)
        except Exception:
            pass


class TestRuntimeCapture:
    def test_captures_deadlocking_run(self, runtime_factory):
        """The satellite requirement: a known-deadlocking runtime run is
        captured with its registers, advances, and both blocks."""
        recorder = TraceRecorder(meta={"scenario": "crossed"})
        rt = runtime_factory("detection", recorder=recorder)
        rt.monitor.stop()  # manual polling keeps the run deterministic
        t1, t2 = run_crossed_deadlock(rt)
        join_quietly(t1, t2)
        assert rt.reports, "the deadlock was not detected live"

        trace = recorder.trace()
        kinds = [r.kind for r in trace]
        assert kinds.count(RecordKind.BLOCK) == 2
        # Each task registered with both phasers.
        assert kinds.count(RecordKind.REGISTER) == 4
        # Each task arrived at its own phaser.
        assert kinds.count(RecordKind.ADVANCE) == 2
        blocks = [r for r in trace if r.kind is RecordKind.BLOCK]
        assert {r.task for r in blocks} == {t1.task_id, t2.task_id}
        # The recorded statuses carry the crossed waits.
        waits = {next(iter(r.status.waits)).phaser for r in blocks}
        assert len(waits) == 2

    def test_seq_is_monotonic(self, runtime_factory):
        recorder = TraceRecorder()
        rt = runtime_factory("detection", recorder=recorder)
        rt.monitor.stop()
        t1, t2 = run_crossed_deadlock(rt)
        join_quietly(t1, t2)
        seqs = [r.seq for r in recorder.trace()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_off_mode_records_too(self, runtime_factory):
        """Recording works with verification OFF — the record-now,
        verify-offline workflow."""
        recorder = TraceRecorder()
        rt = runtime_factory("off", recorder=recorder)
        ph = Phaser(rt, register_self=False, name="bar")
        gate = threading.Event()

        def worker():
            gate.wait(10)
            ph.arrive_and_await_advance()

        tasks = [rt.spawn(worker, register=[ph], name=f"w{i}") for i in range(3)]
        gate.set()
        for t in tasks:
            t.join(10)
        kinds = {r.kind for r in recorder.trace()}
        assert RecordKind.BLOCK in kinds
        assert RecordKind.UNBLOCK in kinds
        assert rt.stats.checks == 0  # no verification happened

    def test_save_and_reload(self, tmp_path, runtime_factory):
        recorder = TraceRecorder(meta={"scenario": "crossed"})
        rt = runtime_factory("detection", recorder=recorder)
        rt.monitor.stop()
        t1, t2 = run_crossed_deadlock(rt)
        join_quietly(t1, t2)
        path = recorder.save(tmp_path / "run.trace")
        restored = load_trace(path)
        assert restored.records == recorder.trace().records
        assert restored.header.meta["scenario"] == "crossed"


class TestStoreCapture:
    def test_put_records_publish(self):
        recorder = TraceRecorder()
        store = InMemoryStore(recorder=recorder)
        payload = {"t1": {"waits": [["p", 1]], "registered": {"p": 1}, "generation": 1}}
        store.put("siteA", payload)
        trace = recorder.trace()
        assert len(trace) == 1
        rec = trace.records[0]
        assert rec.kind is RecordKind.PUBLISH
        assert rec.site == "siteA"
        assert rec.payload == payload

    def test_replicated_store_records_once(self):
        recorder = TraceRecorder()
        replicas = [InMemoryStore(name=f"r{i}") for i in range(3)]
        store = ReplicatedStore(replicas, recorder=recorder)
        store.put("siteA", {})
        assert len(recorder) == 1  # one logical write, one record

    def test_failed_put_not_recorded(self):
        recorder = TraceRecorder()
        store = InMemoryStore(recorder=recorder)
        store.set_available(False)
        with pytest.raises(Exception):
            store.put("siteA", {})
        assert len(recorder) == 0


class TestInterpreterCapture:
    def test_pl_deadlock_recorded_and_replayable(self):
        """A deadlocking PL program records block events whose replay
        reproduces the interpreter's own report."""
        from repro.trace.replay import replay

        recorder = TraceRecorder(meta={"program": "running_example"})
        checker = DeadlockChecker()
        interp = Interpreter(seed=7, checker=checker, recorder=recorder)
        result = interp.run(programs.initial(programs.running_example(I=3, J=1)))
        assert result.reports, "interpreter did not catch the PL deadlock"
        outcome = replay(recorder.trace(), mode="detection")
        assert outcome.deadlocked
        # Same cycle up to rotation (the interpreter republishes whole
        # snapshots, so its insertion order can rotate the walk).
        assert frozenset(outcome.reports[0].cycle) == frozenset(result.reports[0].cycle)

    def test_reused_interpreter_starts_a_fresh_diff(self):
        """run() resets the blocked-set diff: a second run on the same
        interpreter re-records its blocks instead of suppressing them."""
        from repro.trace.replay import replay

        recorder = TraceRecorder()
        interp = Interpreter(seed=7, checker=DeadlockChecker(), recorder=recorder)
        program = programs.initial(programs.running_example(I=3, J=1))
        assert interp.run(program).reports
        recorder.clear()
        assert interp.run(program).reports
        second = recorder.trace()
        assert any(r.kind is RecordKind.BLOCK for r in second)
        assert replay(second, mode="detection").deadlocked

    def test_pl_clean_program_records_no_deadlock(self):
        from repro.trace.replay import replay

        recorder = TraceRecorder()
        checker = DeadlockChecker()
        interp = Interpreter(seed=7, checker=checker, recorder=recorder)
        result = interp.run(programs.initial(programs.spmd_rounds(n=3, rounds=2)))
        assert not result.reports
        assert not replay(recorder.trace(), mode="detection").deadlocked


class TestRecorderBasics:
    def test_clear_keeps_seq_monotonic(self):
        recorder = TraceRecorder()
        recorder.record_unblock("t1")
        recorder.clear()
        rec = recorder.record_unblock("t2")
        assert rec.seq == 1  # counter survives the clear

    def test_ids_coerced_to_str(self):
        recorder = TraceRecorder()
        rec = recorder.record_block(42, waiting_on("p", 1, p=1))
        assert rec.task == "42"
