"""The checked-in regression corpus: pin the checker's exact reports.

``tests/trace/corpus/`` holds a small set of trace files — generated
scenarios (both families, both codecs) plus *recorded* live runs — and
``expected_replay.txt``, the byte-exact CLI corpus-replay output.  The
tests replay the files serially, in parallel and streamed, and compare
against the golden bytes: any refactor that changes a report (cycle
rotation, task ordering, check cadence, codec framing) fails loudly
here instead of drifting silently.

Regenerating the golden files after an *intentional* change::

    PYTHONPATH=src python -m repro.trace replay tests/trace/corpus \
        > tests/trace/corpus/expected_replay.txt 2>/dev/null
    PYTHONPATH=src python -m repro.trace replay tests/trace/corpus \
        --shard-components \
        > tests/trace/corpus/expected_replay_sharded.txt 2>/dev/null
"""

from __future__ import annotations

import pathlib

import pytest

from repro.trace.cli import main
from repro.trace.codec import dumps, load_trace
from repro.trace.corpus import (
    AioSpec,
    BoundedSpec,
    ChurnSpec,
    KnotSpec,
    NearMissSpec,
    ScenarioSpec,
    build_trace,
)
from repro.trace.parallel import discover_traces
from repro.trace.replay import replay

CORPUS = pathlib.Path(__file__).parent / "corpus"
GOLDEN = CORPUS / "expected_replay.txt"
#: Sharded replay has its own golden: per-shard model selection checks
#: small components in the WFG, so its reports legitimately differ from
#: the serial (whole-snapshot, usually SG) ones.
GOLDEN_SHARDED = CORPUS / "expected_replay_sharded.txt"

#: The generated members of the corpus (the recorded-* files are
#: one-off captures and are pinned by bytes alone).
GENERATED_SPECS = (
    ScenarioSpec(cycle_len=2, fan_out=1, sites=1, rounds=1, deadlock=True),
    ScenarioSpec(cycle_len=3, fan_out=2, sites=1, rounds=2, deadlock=False),
    ScenarioSpec(cycle_len=2, fan_out=2, sites=2, rounds=1, deadlock=True),
    ChurnSpec(pool=5, window=3, rounds=3, sites=1, deadlock=True),
    ChurnSpec(pool=4, window=2, rounds=2, sites=2, deadlock=False),
    AioSpec(tasks=8, shape="cycle", deadlock=True),
    AioSpec(tasks=8, shape="churn", deadlock=False),
    BoundedSpec(stages=3, bound=2, rounds=1, sites=1, deadlock=True),
    BoundedSpec(stages=2, bound=1, rounds=1, sites=2, deadlock=False),
    KnotSpec(pairs=2, rounds=1, sites=1, deadlock=True),
    KnotSpec(pairs=1, rounds=1, sites=2, deadlock=False),
    NearMissSpec(chain_len=3, rounds=1, sites=2, realisable=True),
    NearMissSpec(chain_len=3, rounds=1, sites=2, realisable=False),
)

CODEC_EXT = {"jsonl": ".jsonl", "binary": ".trace"}


def corpus_files():
    return discover_traces(CORPUS)


def expected_verdict(path: pathlib.Path) -> bool:
    if path.stem.endswith("-dl") or "crossed" in path.stem:
        return True
    assert path.stem.endswith("-ok") or "barrier" in path.stem
    return False


class TestCorpusContents:
    def test_corpus_is_checked_in_and_nonempty(self):
        files = corpus_files()
        assert len(files) == 32
        assert any(p.name.startswith("recorded-") for p in files)
        assert any(p.name.startswith("churn-") for p in files)
        assert any(p.name.startswith("aio-") for p in files)
        assert any(p.name.startswith("bounded-") for p in files)
        assert any(p.name.startswith("knot-") for p in files)
        assert any(p.name.startswith("nearmiss-") for p in files)

    def test_recorded_members_cover_every_source(self):
        """The ROADMAP's pinned-surface item: live runtime, PL
        interpreter and distributed cluster recordings all present —
        the bucket-era cluster capture (v1, ``publish`` records) *and*
        a delta-protocol one (v2, ``publish_delta`` records)."""
        names = {p.name for p in corpus_files()}
        assert "recorded-crossed-detection.trace" in names
        assert "recorded-pl-averaging-dl.jsonl" in names
        assert "recorded-pl-spmd-ok.jsonl" in names
        assert "recorded-cluster-dl.trace" in names
        assert "recorded-cluster-delta-dl.trace" in names

    def test_cluster_recording_carries_multi_site_publishes(self):
        trace = load_trace(CORPUS / "recorded-cluster-dl.trace")
        sites = {r.site for r in trace if r.site is not None}
        assert len(sites) >= 2, "expected publishes from several places"

    def test_delta_cluster_recording_carries_publish_deltas(self):
        """The new live capture: the store recorded the delta streams
        of several places, opening with snapshot checkpoints."""
        from repro.trace.events import RecordKind

        trace = load_trace(CORPUS / "recorded-cluster-delta-dl.trace")
        deltas = [r for r in trace if r.kind is RecordKind.PUBLISH_DELTA]
        assert deltas, "expected publish_delta records"
        sites = {r.site for r in deltas}
        assert len(sites) >= 2, "expected streams from several places"
        first = {}
        for rec in deltas:
            first.setdefault(rec.site, rec.payload["kind"])
        assert set(first.values()) == {"snapshot"}

    @pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
    def test_replays_to_expected_verdict(self, path):
        outcome = replay(path)
        assert outcome.deadlocked == expected_verdict(path), path.name

    @pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
    def test_streamed_replay_agrees(self, path):
        assert replay(path, stream=True).reports == replay(path).reports

    @pytest.mark.parametrize("path", corpus_files(), ids=lambda p: p.name)
    def test_incremental_replay_agrees(self, path):
        """The tentpole acceptance pin: the delta-maintained engine
        reproduces the from-scratch reports on every corpus member."""
        assert replay(path, incremental=True).reports == replay(path).reports

    @pytest.mark.parametrize("spec", GENERATED_SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("codec", sorted(CODEC_EXT))
    def test_generator_output_is_byte_pinned(self, spec, codec):
        """Regenerating a corpus member reproduces the checked-in bytes:
        generator schedules and codec framing are both frozen."""
        checked_in = CORPUS / f"{spec.name}{CODEC_EXT[codec]}"
        assert dumps(build_trace(spec), codec) == checked_in.read_bytes()


class TestGoldenReplayOutput:
    def run_cli(self, capsys, *extra) -> str:
        assert main(["replay", str(CORPUS), *extra]) == 0
        return capsys.readouterr().out

    def test_serial_output_matches_golden(self, capsys):
        assert self.run_cli(capsys) == GOLDEN.read_text()

    def test_parallel_output_matches_golden(self, capsys):
        """The CI assertion, in-process: --parallel 2 is byte-identical."""
        assert self.run_cli(capsys, "--parallel", "2") == GOLDEN.read_text()

    def test_streamed_output_matches_golden(self, capsys):
        assert self.run_cli(capsys, "--stream") == GOLDEN.read_text()

    def test_incremental_output_matches_golden(self, capsys):
        """The CI assertion, in-process: --incremental is byte-identical
        to the from-scratch engine."""
        assert self.run_cli(capsys, "--incremental") == GOLDEN.read_text()

    def test_sharded_output_matches_sharded_golden(self, capsys):
        """Sharded replay is pinned by its own golden (per-shard model
        selection reports small components as WFG cycles)."""
        assert self.run_cli(capsys, "--shard-components") == GOLDEN_SHARDED.read_text()

    def test_sharded_incremental_matches_sharded_golden(self, capsys):
        assert (
            self.run_cli(capsys, "--shard-components", "--incremental")
            == GOLDEN_SHARDED.read_text()
        )
