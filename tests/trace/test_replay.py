"""Replay tests: determinism against live runs, modes, models, cadence."""

from __future__ import annotations

import pytest

from repro.core.selection import GraphModel
from repro.trace.corpus import ScenarioSpec, scenario_trace
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import AVOIDANCE, DETECTION, ReplayEngine, replay

from test_recorder import join_quietly, run_crossed_deadlock


class TestDeterminism:
    def test_replay_equals_live_detection_report(self, runtime_factory):
        """The satellite requirement: replaying a recorded deadlocking
        run reproduces the live DeadlockReport bit-for-bit (replay
        additionally attaches record provenance; the analysis content
        must match the live report exactly)."""
        recorder = TraceRecorder()
        rt = runtime_factory("detection", recorder=recorder)
        rt.monitor.stop()  # manual poll: the live check point is exact
        t1, t2 = run_crossed_deadlock(rt)
        join_quietly(t1, t2)
        assert len(rt.reports) == 1
        outcome = replay(recorder.trace(), mode=DETECTION)
        assert [r.without_provenance() for r in outcome.reports] == rt.reports
        assert all(r.provenance for r in outcome.reports)

    def test_replay_equals_live_avoidance_report(self, runtime_factory):
        recorder = TraceRecorder()
        rt = runtime_factory("avoidance", recorder=recorder)
        t1, t2 = run_crossed_deadlock(rt, poll=False)
        join_quietly(t1, t2)
        assert len(rt.reports) == 1 and rt.reports[0].avoided
        outcome = replay(recorder.trace(), mode=AVOIDANCE)
        assert [r.without_provenance() for r in outcome.reports] == rt.reports
        assert all(r.provenance for r in outcome.reports)

    def test_replay_is_self_deterministic(self):
        trace = scenario_trace(
            ScenarioSpec(cycle_len=4, fan_out=2, sites=1, rounds=3)
        )
        first = replay(trace, mode=DETECTION)
        second = replay(trace, mode=DETECTION)
        assert first.reports == second.reports
        assert first.checks_run == second.checks_run


class TestModes:
    def test_avoidance_refuses_the_closing_block(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=1))
        outcome = replay(trace, mode=AVOIDANCE)
        assert len(outcome.reports) == 1
        assert outcome.reports[0].avoided

    def test_detection_reports_once_for_persisting_cycle(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=3, fan_out=2, sites=1))
        outcome = replay(trace, mode=DETECTION)
        assert len(outcome.reports) == 1
        assert not outcome.reports[0].avoided

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ReplayEngine(mode="wrong")

    def test_avoidance_rejects_publish_records(self):
        """Distributed traces carry whole buckets; avoidance replay must
        fail loudly rather than report a silent 'no deadlock'."""
        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=2))
        with pytest.raises(ValueError, match="publish"):
            replay(trace, mode=AVOIDANCE)


class TestDistributedReplay:
    def test_publish_delta_records_drive_global_view(self):
        """sites>1 corpora carry only publish_delta records; the replay
        materialises per-site views from the deltas exactly like the
        live one-phase distributed checker."""
        trace = scenario_trace(ScenarioSpec(cycle_len=3, fan_out=1, sites=3))
        from repro.trace.events import RecordKind

        kinds = {r.kind for r in trace}
        assert RecordKind.PUBLISH_DELTA in kinds and RecordKind.BLOCK not in kinds
        outcome = replay(trace, mode=DETECTION)
        assert outcome.deadlocked
        # The cycle spans statuses from every site's bucket.
        assert len(outcome.reports[0].tasks) == 3

    def test_legacy_publish_records_still_replay(self):
        """Bucket-protocol traces (old recordings) replay unchanged."""
        from repro.trace import events as ev
        from repro.trace.events import status_to_obj
        from repro.core.events import waiting_on

        records = [
            ev.publish(0, "A", {"a": status_to_obj(waiting_on("p", 1, p=1, q=0))}),
            ev.publish(1, "B", {"b": status_to_obj(waiting_on("q", 1, q=1, p=0))}),
        ]
        for kwargs in ({}, {"incremental": True}):
            outcome = replay(records, mode=DETECTION, **kwargs)
            assert outcome.deadlocked
            assert set(outcome.reports[0].tasks) == {"a", "b"}

    def test_delta_gap_in_a_trace_is_an_error(self):
        """A non-contiguous per-site delta stream is a recording bug;
        both engines reject it identically instead of analysing a view
        that silently missed a change."""
        from repro.distributed.delta import DeltaSequenceError, make_snapshot
        from repro.trace import events as ev

        records = [
            ev.publish_delta(0, "A", make_snapshot(1, {}, "A1")),
            ev.publish_delta(
                1, "A",
                {"v": 1, "stream": "A1", "seq": 3, "kind": "delta",
                 "set": {}, "restore": {}, "clear": []},
            ),
        ]
        for kwargs in ({}, {"incremental": True}):
            with pytest.raises(DeltaSequenceError):
                replay(records, mode=DETECTION, **kwargs)

    def test_deadlock_free_distributed_trace(self):
        trace = scenario_trace(
            ScenarioSpec(cycle_len=3, fan_out=1, sites=2, deadlock=False)
        )
        assert not replay(trace, mode=DETECTION).deadlocked


class TestModelsAndCadence:
    @pytest.mark.parametrize("model", [GraphModel.WFG, GraphModel.SG, GraphModel.AUTO])
    def test_any_graph_model_finds_the_cycle(self, model):
        trace = scenario_trace(ScenarioSpec(cycle_len=3, fan_out=2, sites=1))
        outcome = replay(trace, model=model, mode=DETECTION)
        assert outcome.deadlocked
        if model is not GraphModel.AUTO:
            assert outcome.reports[0].model_used is model

    def test_check_every_trades_checks_for_throughput(self):
        trace = scenario_trace(
            ScenarioSpec(cycle_len=3, fan_out=2, sites=1, rounds=5)
        )
        dense = replay(trace, mode=DETECTION, check_every=1)
        sparse = replay(trace, mode=DETECTION, check_every=8)
        assert sparse.checks_run < dense.checks_run
        # The drain still analyses the final state: no lost verdicts.
        assert sparse.deadlocked and dense.deadlocked

    def test_throughput_and_stats_populated(self):
        trace = scenario_trace(
            ScenarioSpec(cycle_len=2, fan_out=2, sites=1, rounds=4)
        )
        outcome = replay(trace, mode=DETECTION)
        assert outcome.records_processed == len(trace)
        assert outcome.events_per_sec > 0
        assert outcome.stats.checks == outcome.checks_run
        assert outcome.stats.mean_edges >= 0


class TestReplayFromPath:
    def test_replay_accepts_a_path(self, tmp_path):
        from repro.trace.codec import save_trace

        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=1))
        path = save_trace(trace, tmp_path / "t.trace")
        assert replay(path, mode=DETECTION).deadlocked


class TestIncrementalEngine:
    """The delta-maintained engine: identical reports, O(N) cost."""

    def make_dl_trace(self):
        return scenario_trace(ScenarioSpec(cycle_len=3, fan_out=2, rounds=2))

    def test_detection_reports_identical(self):
        trace = self.make_dl_trace()
        a = replay(trace)
        b = replay(trace, incremental=True)
        assert a.reports == b.reports
        assert a.checks_run == b.checks_run
        assert a.records_processed == b.records_processed

    def test_sharded_detection_identical(self):
        trace = self.make_dl_trace()
        assert (
            replay(trace, shard_components=True, incremental=True).reports
            == replay(trace, shard_components=True).reports
        )

    def test_avoidance_identical(self):
        trace = self.make_dl_trace()
        a = replay(trace, mode=AVOIDANCE)
        b = replay(trace, mode=AVOIDANCE, incremental=True)
        assert a.reports == b.reports

    def test_avoidance_rejects_publish_records(self):
        trace = scenario_trace(ScenarioSpec(cycle_len=2, fan_out=1, sites=2))
        with pytest.raises(ValueError, match="publish"):
            replay(trace, mode=AVOIDANCE, incremental=True)

    def test_distributed_bucket_diffing(self):
        """Publish records replay through task-level bucket deltas; the
        merged-view reports stay identical to the from-scratch merge."""
        trace = scenario_trace(
            ScenarioSpec(cycle_len=3, fan_out=2, sites=3, rounds=2)
        )
        a = replay(trace)
        b = replay(trace, incremental=True)
        assert a.reports == b.reports and a.deadlocked

    def test_cross_site_duplicate_publish_rejected(self):
        from repro.trace import events as ev
        from repro.trace.events import status_to_obj
        from repro.core.events import waiting_on

        blob = status_to_obj(waiting_on("p", 1, p=1))
        records = [
            ev.publish(0, "site0", {"t1": blob}),
            ev.publish(1, "site1", {"t1": blob}),
        ]
        with pytest.raises(ValueError, match="several sites"):
            replay(records, incremental=True)

    def test_cadence_above_one_still_identical(self):
        trace = self.make_dl_trace()
        for cadence in (2, 5, 100):
            assert (
                replay(trace, check_every=cadence, incremental=True).reports
                == replay(trace, check_every=cadence).reports
            )

    def test_incremental_runs_fewer_graph_builds(self):
        """The cost model: the incremental engine only materialises a
        snapshot when a cycle exists, so an ok-trace replay does no
        per-check graph builds at all (stats record the maintained WFG
        on every fast-path check)."""
        trace = scenario_trace(
            ScenarioSpec(cycle_len=3, fan_out=2, rounds=4, deadlock=False)
        )
        result = replay(trace, incremental=True)
        assert not result.deadlocked
        assert set(result.stats.model_histogram()) == {GraphModel.WFG}
