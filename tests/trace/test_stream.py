"""Streaming I/O tests: iter/eager equivalence, O(frame) memory,
spill-to-disk recording and crash-truncation tolerance."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.events import BlockedStatus, Event
from repro.trace.codec import load_trace, save_trace
from repro.trace.corpus import ChurnSpec, ScenarioSpec, build_trace
from repro.trace.events import TraceFormatError
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import replay
from repro.trace.stream import StreamingRecorder, iter_load

CODEC_EXT = {"jsonl": ".jsonl", "binary": ".trace"}

#: Specs covering every record kind and both scenario families.
SPECS = (
    ScenarioSpec(cycle_len=3, fan_out=2, sites=1, rounds=2),
    ScenarioSpec(cycle_len=2, fan_out=1, sites=2, rounds=1, deadlock=False),
    ChurnSpec(pool=5, window=3, rounds=3, sites=2),
)


def write(trace, tmp_path, codec, name="t"):
    return save_trace(trace, tmp_path / f"{name}{CODEC_EXT[codec]}", codec=codec)


class TestIterLoadEquivalence:
    @pytest.mark.parametrize("codec", sorted(CODEC_EXT))
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_streamed_records_equal_eager_load(self, tmp_path, codec, spec):
        trace = build_trace(spec)
        path = write(trace, tmp_path, codec)
        streamed = iter_load(path)
        assert streamed.header == load_trace(path).header
        assert tuple(streamed) == load_trace(path).records == trace.records

    @pytest.mark.parametrize("codec", sorted(CODEC_EXT))
    def test_streamed_trace_is_reiterable(self, tmp_path, codec):
        path = write(build_trace(SPECS[0]), tmp_path, codec)
        streamed = iter_load(path)
        assert tuple(streamed) == tuple(streamed)

    @pytest.mark.parametrize("codec", sorted(CODEC_EXT))
    def test_streaming_replay_equals_eager_replay(self, tmp_path, codec):
        trace = build_trace(SPECS[0])
        path = write(trace, tmp_path, codec)
        eager = replay(path)
        streamed = replay(path, stream=True)
        assert streamed.reports == eager.reports
        assert streamed.records_processed == eager.records_processed
        assert streamed.checks_run == eager.checks_run

    def test_bad_policy_rejected(self, tmp_path):
        path = write(build_trace(SPECS[0]), tmp_path, "jsonl")
        with pytest.raises(ValueError):
            iter_load(path, on_truncation="maybe")


class TestStreamingMemory:
    @pytest.mark.parametrize("codec", sorted(CODEC_EXT))
    def test_iteration_is_o_frame(self, tmp_path, codec):
        """Streaming a many-frame trace must peak far below eager load
        (the whole point: replay memory independent of trace length)."""
        trace = build_trace(ScenarioSpec(cycle_len=4, fan_out=4, rounds=450))
        assert len(trace) > 20_000
        path = write(trace, tmp_path, codec)
        del trace

        tracemalloc.start()
        eager = load_trace(path)
        _, eager_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del eager

        tracemalloc.start()
        count = sum(1 for _ in iter_load(path))
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert count > 20_000
        assert stream_peak * 5 < eager_peak, (
            f"streaming peak {stream_peak} not an improvement over "
            f"eager peak {eager_peak}"
        )


class TestStreamingRecorder:
    def status(self, phaser="p", phase=1):
        return BlockedStatus(
            waits=frozenset({Event(phaser, phase)}), registered={phaser: phase}
        )

    @pytest.mark.parametrize("codec", sorted(CODEC_EXT))
    def test_round_trip_equals_buffered_recorder(self, tmp_path, codec):
        """StreamingRecorder produces the same trace TraceRecorder does."""
        buffered = TraceRecorder(meta={"scenario": "pair"})
        path = tmp_path / f"s{CODEC_EXT[codec]}"
        with StreamingRecorder(path, meta={"scenario": "pair"}) as spilled:
            for rec in (buffered, spilled):
                rec.record_register("t1", "p", 0)
                rec.record_advance("t1", "p", 1)
                rec.record_block("t1", self.status())
                rec.record_publish("site0", {"t2": {
                    "waits": [["q", 1]], "registered": {"q": 0}, "generation": 0,
                }})
                rec.record_unblock("t1")
            assert len(spilled) == 5
        assert load_trace(path).records == buffered.trace().records
        assert load_trace(path).header.meta == {"scenario": "pair"}

    def test_records_are_on_disk_not_in_memory(self, tmp_path):
        path = tmp_path / "spill.trace"
        with StreamingRecorder(path) as rec:
            header_size = path.stat().st_size
            for i in range(100):
                rec.record_advance(f"t{i}", "p", 1)
            rec.flush()
            assert path.stat().st_size > header_size
            assert rec._records == []  # nothing buffered

    def test_closed_recorder_rejects_records(self, tmp_path):
        rec = StreamingRecorder(tmp_path / "x.trace")
        rec.close()
        with pytest.raises(RuntimeError):
            rec.record_unblock("t1")

    def test_clear_truncates_to_header(self, tmp_path):
        path = tmp_path / "x.jsonl"
        with StreamingRecorder(path) as rec:
            rec.record_advance("t1", "p", 1)
            rec.clear()
            rec.record_advance("t2", "p", 1)
        records = load_trace(path).records
        assert [r.task for r in records] == ["t2"]
        assert records[0].seq == 1  # the seq counter keeps going

    def test_save_to_other_path_reencodes(self, tmp_path):
        rec = StreamingRecorder(tmp_path / "a.trace")
        rec.record_advance("t1", "p", 1)
        out = rec.save(tmp_path / "b.jsonl")
        assert load_trace(out).records == load_trace(tmp_path / "a.trace").records


class TestTruncationTolerance:
    @pytest.mark.parametrize("codec", sorted(CODEC_EXT))
    @pytest.mark.parametrize("cut", [3, 17])
    def test_partial_tail_ignored_not_fatal(self, tmp_path, codec, cut):
        """A crashed recorder leaves a partial trailing frame; tolerant
        streaming yields every complete record before it."""
        trace = build_trace(SPECS[0])
        path = write(trace, tmp_path, codec)
        clipped = tmp_path / f"clipped{CODEC_EXT[codec]}"
        clipped.write_bytes(path.read_bytes()[:-cut])

        with pytest.raises(TraceFormatError):
            list(iter_load(clipped))  # strict by default

        records = tuple(iter_load(clipped, on_truncation="ignore"))
        assert 0 < len(records) < len(trace)
        assert records == trace.records[: len(records)]

    def test_mid_file_corruption_is_always_fatal_jsonl(self, tmp_path):
        """Tolerance covers crash tails only: damage *before* the last
        record still raises, even under on_truncation='ignore'."""
        trace = build_trace(SPECS[0])
        path = write(trace, tmp_path, "jsonl")
        data = bytearray(path.read_bytes())
        # Chop out a chunk spanning line boundaries mid-file.
        pivot = len(data) // 2
        del data[pivot : pivot + 40]
        bad = tmp_path / "bad.jsonl"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            list(iter_load(bad, on_truncation="ignore"))

    def test_mid_file_corruption_is_always_fatal_binary(self, tmp_path):
        """A *complete* frame with a bad body (here: an unknown kind
        tag) is corruption, not truncation — fatal under any policy."""
        from repro.trace.codec import CODECS
        from repro.trace import events as ev

        codec = CODECS["binary"]
        good = ev.advance(0, "t1", "p", 1)
        bad_frame = bytes([1, 99])  # length prefix 1, unknown tag 99
        path = tmp_path / "bad.trace"
        with open(path, "wb") as fp:
            fp.write(codec.encode_header(ev.TraceHeader(meta={})))
            fp.write(codec.encode_record(good))
            fp.write(bad_frame)
            fp.write(codec.encode_record(ev.advance(1, "t1", "p", 2)))
        with pytest.raises(TraceFormatError):
            list(iter_load(path, on_truncation="ignore"))

    def test_truncated_header_always_fatal(self, tmp_path):
        path = write(build_trace(SPECS[0]), tmp_path, "binary")
        stub = tmp_path / "stub.trace"
        stub.write_bytes(path.read_bytes()[:9])
        with pytest.raises(TraceFormatError):
            iter_load(stub, on_truncation="ignore")

    def test_replay_of_crashed_recording(self, tmp_path):
        """End to end: spill, 'crash' (truncate), tolerantly replay."""
        path = tmp_path / "run.trace"
        with StreamingRecorder(path, meta={"scenario": "crash"}) as rec:
            for i in range(50):
                rec.record_advance(f"t{i}", "p", 1)
        clipped = tmp_path / "crashed.trace"
        clipped.write_bytes(path.read_bytes()[:-5])
        outcome = replay(iter_load(clipped, on_truncation="ignore"))
        assert outcome.records_processed == 49


class TestStreamEdgeCases:
    @pytest.mark.parametrize("policy", ["error", "ignore"])
    def test_zero_length_file_is_fatal(self, tmp_path, policy):
        """An empty file has no header: fatal under every policy."""
        empty = tmp_path / "empty.trace"
        empty.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            iter_load(empty, on_truncation=policy)

    @pytest.mark.parametrize("policy", ["error", "ignore"])
    def test_cut_exactly_on_frame_boundary_is_clean_eof(self, tmp_path, policy):
        """A file ending exactly after a complete frame is not truncated
        at all — every record before the cut streams out, even in strict
        mode."""
        from repro.trace.codec import CODECS

        trace = build_trace(SPECS[0])
        codec = CODECS["binary"]
        header = codec.encode_header(trace.header)
        frames = [codec.encode_record(r) for r in trace.records]
        keep = len(frames) // 2
        cut = tmp_path / "boundary.trace"
        cut.write_bytes(header + b"".join(frames[:keep]))
        records = tuple(iter_load(cut, on_truncation=policy))
        assert records == trace.records[:keep]

    @pytest.mark.parametrize("policy", ["error", "ignore"])
    def test_cut_exactly_on_line_boundary_is_clean_eof(self, tmp_path, policy):
        trace = build_trace(SPECS[0])
        path = write(trace, tmp_path, "jsonl")
        lines = path.read_bytes().splitlines(keepends=True)
        keep = len(lines) // 2  # header + keep-1 records
        cut = tmp_path / "boundary.jsonl"
        cut.write_bytes(b"".join(lines[:keep]))
        records = tuple(iter_load(cut, on_truncation=policy))
        assert records == trace.records[: keep - 1]

    def test_ignore_mode_with_midfile_corruption_still_fatal(self, tmp_path):
        """on_truncation='ignore' tolerates the crash *tail* only: a
        corrupt frame followed by good frames — even with a genuinely
        truncated tail after them — must still raise."""
        from repro.trace import events as ev
        from repro.trace.codec import CODECS

        codec = CODECS["binary"]
        good = [codec.encode_record(ev.advance(i, "t1", "p", i + 1)) for i in range(3)]
        corrupt = bytes([1, 99])  # complete frame, unknown kind tag
        partial_tail = good[2][: len(good[2]) - 2]  # crash mid-frame
        path = tmp_path / "bad.trace"
        path.write_bytes(
            codec.encode_header(ev.TraceHeader(meta={}))
            + good[0]
            + corrupt
            + good[1]
            + partial_tail
        )
        with pytest.raises(TraceFormatError):
            list(iter_load(path, on_truncation="ignore"))

    def test_ignore_mode_jsonl_corruption_before_valid_records_fatal(self, tmp_path):
        trace = build_trace(SPECS[0])
        path = write(trace, tmp_path, "jsonl")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"seq": "not-a-record"}\n'
        bad = tmp_path / "bad.jsonl"
        bad.write_bytes(b"".join(lines))
        with pytest.raises(TraceFormatError):
            list(iter_load(bad, on_truncation="ignore"))

    def test_ignore_mode_jsonl_corrupt_line_before_blank_tail_fatal(self, tmp_path):
        """A corrupt *terminated* line followed only by blank lines is
        corruption, not a crash tail (a crash leaves an unterminated
        partial line, never content after a newline)."""
        trace = build_trace(SPECS[0])
        path = write(trace, tmp_path, "jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_bytes(path.read_bytes() + b'{"broken": \n\n')
        with pytest.raises(TraceFormatError):
            list(iter_load(bad, on_truncation="ignore"))
