"""SPMD scaffolding tests: slabs, reductions, pools."""

from __future__ import annotations

import pytest

from repro.workloads.common import (
    Reducer,
    SpmdPool,
    ValidationError,
    WorkloadResult,
    slab,
)
from repro.runtime.barriers import CyclicBarrier


class TestSlab:
    def test_partitions_cover_range(self):
        n, size = 17, 5
        covered = []
        for rank in range(size):
            s = slab(n, rank, size)
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(n))

    def test_balanced_within_one(self):
        sizes = [slab(17, r, 5) for r in range(5)]
        lengths = [s.stop - s.start for s in sizes]
        assert max(lengths) - min(lengths) <= 1

    def test_more_ranks_than_items(self):
        lengths = [
            slab(3, r, 8).stop - slab(3, r, 8).start for r in range(8)
        ]
        assert sum(lengths) == 3
        assert all(l >= 0 for l in lengths)

    def test_single_rank_takes_all(self):
        assert slab(10, 0, 1) == slice(0, 10)


class TestWorkloadResult:
    def test_require_valid_passes(self):
        r = WorkloadResult("X", 1, 0.0, validated=True)
        assert r.require_valid() is r

    def test_require_valid_raises(self):
        r = WorkloadResult("X", 1, 0.0, validated=False, details={"err": 1})
        with pytest.raises(ValidationError):
            r.require_valid()


class TestReducer:
    def test_all_reduce_sums(self, off_runtime):
        n = 4
        bar = CyclicBarrier(n, off_runtime)
        red = Reducer(n, bar)
        outs = []

        def body(rank: int):
            outs.append(red.all_reduce(rank, float(rank + 1)))

        tasks = [off_runtime.spawn(body, i, register=[bar]) for i in range(n)]
        for t in tasks:
            t.join(10)
        assert outs == [10.0, 10.0, 10.0, 10.0]

    def test_consecutive_reductions_do_not_bleed(self, off_runtime):
        n = 3
        bar = CyclicBarrier(n, off_runtime)
        red = Reducer(n, bar)
        outs = {0: [], 1: []}

        def body(rank: int):
            outs[0].append(red.all_reduce(rank, 1.0))
            outs[1].append(red.all_reduce(rank, 10.0))

        tasks = [off_runtime.spawn(body, i, register=[bar]) for i in range(n)]
        for t in tasks:
            t.join(10)
        assert set(outs[0]) == {3.0}
        assert set(outs[1]) == {30.0}


class TestSpmdPool:
    def test_runs_all_ranks(self, off_runtime):
        pool = SpmdPool(off_runtime, 4)
        seen = []
        pool.run(lambda rank, p: seen.append(rank))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_rank_failure_propagates(self, off_runtime):
        pool = SpmdPool(off_runtime, 2)

        def body(rank, p):
            if rank == 1:
                raise ValueError("rank 1 boom")

        from repro.runtime.tasks import TaskFailedError

        with pytest.raises(TaskFailedError):
            pool.run(body)
        assert pool._errors and isinstance(pool._errors[0], ValueError)

    def test_extra_barriers(self, off_runtime):
        pool = SpmdPool(off_runtime, 3, extra_barriers=2)
        trace = []

        def body(rank, p):
            p.barrier_step(which=0)
            trace.append(("b0", rank))
            p.barrier_step(which=1)
            trace.append(("b1", rank))

        pool.run(body)
        assert len(trace) == 6
