"""Course-program tests (Section 6.3), including deadlock mutations.

Besides validating every program, two *mutation* tests check that the
disciplines the docstrings claim are load-bearing really are: violating
them deadlocks, and Armus reports it.
"""

from __future__ import annotations

import pytest

from repro.core.report import DeadlockError
from repro.runtime.clocked_var import ClockedVar
from repro.runtime.tasks import TaskFailedError
from repro.workloads.course import run_bfs, run_fi, run_fr, run_ps, run_se
from repro.workloads.course.bfs import random_graph, serial_bfs
from repro.workloads.course.se import array_sieve


class TestSubstrates:
    def test_random_graph_connected(self):
        adj = random_graph(30, 3.0, seed=5)
        assert len(serial_bfs(adj, 0)) == 30  # the ring guarantees it

    def test_random_graph_symmetric(self):
        adj = random_graph(20, 3.0, seed=6)
        for v, neighbours in enumerate(adj):
            for u in neighbours:
                assert v in adj[u]

    def test_array_sieve(self):
        assert array_sieve(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]


class TestPrograms:
    @pytest.mark.parametrize("n", (4, 16, 33))
    def test_ps(self, off_runtime, n: int):
        assert run_ps(off_runtime, n_tasks=n).details["err"] == 0.0

    @pytest.mark.parametrize("nodes", (12, 48))
    def test_bfs(self, off_runtime, nodes: int):
        r = run_bfs(off_runtime, n_nodes=nodes)
        assert r.details["visited"] == nodes

    @pytest.mark.parametrize("n", (3, 10, 16))
    def test_fi(self, off_runtime, n: int):
        r = run_fi(off_runtime, n=n)
        assert r.validated

    @pytest.mark.parametrize("n", (0, 1, 5, 9))
    def test_fr(self, off_runtime, n: int):
        r = run_fr(off_runtime, n=n)
        assert r.validated

    @pytest.mark.parametrize("limit", (10, 50))
    def test_se(self, off_runtime, limit: int):
        r = run_se(off_runtime, limit=limit)
        assert not r.details["leaked"]

    def test_all_under_avoidance(self, avoidance_runtime):
        rt = avoidance_runtime
        for result in (
            run_ps(rt, n_tasks=8),
            run_bfs(rt, n_nodes=16),
            run_fi(rt, n=8),
            run_fr(rt, n=6),
            run_se(rt, limit=20),
        ):
            assert result.validated
        assert not rt.reports  # all five are deadlock-free

    def test_all_under_detection(self, detection_runtime):
        rt = detection_runtime
        for result in (
            run_ps(rt, n_tasks=8),
            run_bfs(rt, n_nodes=16),
            run_fi(rt, n=8),
            run_se(rt, limit=20),
        ):
            assert result.validated
        assert not rt.reports


class TestDeadlockMutations:
    def test_fi_descending_order_deadlocks(self, avoidance_runtime):
        """FI's ascending-clock-order discipline is load-bearing: two
        neighbour tasks touching their shared clocked variables in
        *opposite* orders produce a circular wait that Armus reports."""
        rt = avoidance_runtime
        cv0 = ClockedVar(0, runtime=rt)
        cv1 = ClockedVar(0, runtime=rt)

        def forward():  # touches cv0 then cv1 (ascending)
            cv0.next()
            cv1.next()
            cv0.drop()
            cv1.drop()

        def backward():  # touches cv1 then cv0 (descending!)
            cv1.next()
            cv0.next()
            cv0.drop()
            cv1.drop()

        t1 = rt.spawn(forward, register=[cv0, cv1])
        t2 = rt.spawn(backward, register=[cv0, cv1])
        cv0.drop()
        cv1.drop()
        outcomes = []
        for t in (t1, t2):
            try:
                t.join(10)
                outcomes.append("ok")
            except DeadlockError:
                outcomes.append("deadlock")
            except TaskFailedError as err:
                outcomes.append(
                    "deadlock" if isinstance(err.cause, DeadlockError) else "?"
                )
        assert "deadlock" in outcomes
        assert rt.reports

    def test_ps_blocked_element_forms_reported_cycle(self, detection_runtime):
        """A PS element blocked on a side phaser that only its barrier
        peer can advance: t1 waits at the barrier for t2, t2 waits at the
        phaser for t1 — a cross-abstraction cycle the detector reports
        (and cancels both ways)."""
        rt = detection_runtime
        from repro.runtime.barriers import CyclicBarrier
        from repro.runtime.phaser import Phaser

        bar = CyclicBarrier(2, rt)
        side = Phaser(rt, register_self=False, name="side")

        def good():  # arrives at the barrier, then (too late) the phaser
            bar.await_barrier()
            side.arrive()

        def stuck():  # needs good's phaser arrival before the barrier
            side.arrive()
            side.await_advance()
            bar.await_barrier()

        t1 = rt.spawn(good, register=[bar, side])
        t2 = rt.spawn(stuck, register=[bar, side])
        outcomes = []
        for t in (t1, t2):
            try:
                t.join(10)
                outcomes.append("ok")
            except DeadlockError:
                outcomes.append("deadlock")
        assert outcomes.count("deadlock") == 2
        assert rt.reports
