"""HPCC distributed workload tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.places import Cluster
from repro.workloads.hpcc import (
    run_dist_ft,
    run_jacobi,
    run_kmeans,
    run_ssca2,
    run_stream,
)
from repro.workloads.hpcc.ssca2 import bfs_stats, rmat_graph


@pytest.fixture
def cluster():
    with Cluster(3, check_interval_s=0.05, publish_interval_s=0.02) as cl:
        yield cl


class TestGraphSubstrate:
    def test_rmat_deterministic(self):
        a1, w1 = rmat_graph(5, 4, seed=9)
        a2, w2 = rmat_graph(5, 4, seed=9)
        assert a1 == a2
        np.testing.assert_array_equal(w1, w2)

    def test_rmat_no_self_loops(self):
        adj, weights = rmat_graph(5, 4, seed=9)
        for v, neighbours in enumerate(adj):
            assert v not in neighbours
        assert np.all(np.diag(weights) == 0)

    def test_rmat_power_law_ish(self):
        """R-MAT's skew: the max out-degree well above the mean."""
        adj, _ = rmat_graph(7, 6, seed=9)
        degrees = np.array([len(n) for n in adj])
        assert degrees.max() > 3 * max(degrees.mean(), 1)

    def test_bfs_stats_match_networkx(self):
        import networkx as nx

        adj, _ = rmat_graph(5, 4, seed=11)
        g = nx.DiGraph(
            [(u, v) for u, ns in enumerate(adj) for v in ns]
        )
        g.add_nodes_from(range(len(adj)))
        for root in (0, 3, 17):
            reached, total_depth, max_depth = bfs_stats(adj, root)
            lengths = nx.single_source_shortest_path_length(g, root)
            assert reached == len(lengths)
            assert total_depth == sum(lengths.values())
            assert max_depth == max(lengths.values())


class TestKernels:
    def test_stream(self, cluster):
        assert run_stream(cluster, size=4096, reps=3).details["err"] == 0.0

    def test_dist_ft(self, cluster):
        r = run_dist_ft(cluster, size=16, steps=2)
        assert r.details["field_err"] < 1e-10

    def test_kmeans_matches_serial(self, cluster):
        r = run_kmeans(cluster, n_points=600, k=5, iterations=4)
        assert r.details["centroid_err"] < 1e-9
        assert r.details["inertia_monotone"]

    def test_jacobi_bit_identical(self, cluster):
        r = run_jacobi(cluster, size=24, iterations=20)
        assert r.details["grid_err"] == 0.0

    def test_ssca2(self, cluster):
        r = run_ssca2(cluster, scale=5, avg_degree=4, n_roots=6)
        assert r.details["stats_err"] == 0
        assert r.details["closure_err"] == 0

    def test_single_place_cluster(self):
        with Cluster(1, check_interval_s=0.05) as cl:
            assert run_stream(cl, size=1024, reps=2).validated
