"""JGF workload tests: the ray tracer and the SYNC microbenchmark."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.jgf import run_rt, run_sync
from repro.workloads.jgf.rt import SPHERES, render


class TestRender:
    def test_deterministic(self):
        a = render(16, 12, range(12))
        b = render(16, 12, range(12))
        np.testing.assert_array_equal(a, b)

    def test_scene_has_spheres_and_background(self):
        img = render(32, 24, range(24))
        assert img.max() > 0.5  # lit sphere pixels
        assert (img == 0.0).any()  # background

    def test_shadows_darken(self):
        """With the light high to the right, some sphere pixels must be
        in shadow (only ambient light)."""
        img = render(48, 32, range(32))
        lit = img[img.sum(axis=2) > 0.3]
        dark = img[(img.sum(axis=2) > 0.0) & (img.sum(axis=2) < 0.15)]
        assert len(lit) > 0 and len(dark) > 0

    def test_rows_independent(self):
        whole = render(16, 12, range(12))
        one = render(16, 12, [5])
        np.testing.assert_array_equal(whole[5], one[0])

    def test_scene_shape(self):
        assert len(SPHERES) == 4  # three spheres + the ground


class TestRtKernel:
    @pytest.mark.parametrize("n_tasks", (1, 3, 4))
    def test_validates(self, off_runtime, n_tasks: int):
        r = run_rt(off_runtime, n_tasks=n_tasks, width=24, height=16, frames=1)
        assert r.details["image_err"] == 0.0

    def test_more_tasks_than_scanlines(self, off_runtime):
        r = run_rt(off_runtime, n_tasks=8, width=16, height=4, frames=1)
        assert r.validated


class TestSync:
    @pytest.mark.parametrize("n_tasks", (2, 4, 8))
    def test_lockstep(self, off_runtime, n_tasks: int):
        r = run_sync(off_runtime, n_tasks=n_tasks, steps=20)
        assert r.details["max_spread"] <= 1

    def test_under_avoidance(self, avoidance_runtime):
        r = run_sync(avoidance_runtime, n_tasks=4, steps=20)
        assert r.validated
        assert avoidance_runtime.stats.checks > 0
