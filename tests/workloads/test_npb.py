"""NPB kernel tests: numerical validation plus the line-solver units."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg

from repro.workloads.npb import run_bt, run_cg, run_ft, run_mg, run_sp
from repro.workloads.npb.cg import laplacian_2d
from repro.workloads.npb.solvers import (
    bands_to_dense,
    block_thomas,
    penta_bands,
    penta_solve,
)


class TestSolvers:
    @pytest.mark.parametrize("m", (4, 9, 16))
    def test_penta_solve_matches_scipy(self, m: int):
        bands = penta_bands(m, 0.35)
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal((5, m))
        ours = penta_solve(bands, rhs)
        ref = scipy.linalg.solve_banded((2, 2), bands, rhs.T).T
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    @pytest.mark.parametrize("m", (4, 9, 16))
    def test_penta_solve_matches_dense(self, m: int):
        bands = penta_bands(m, 0.2)
        a = bands_to_dense(bands)
        rng = np.random.default_rng(2)
        rhs = rng.standard_normal((3, m))
        ours = penta_solve(bands, rhs)
        ref = np.linalg.solve(a, rhs.T).T
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_penta_operator_is_spd(self):
        a = bands_to_dense(penta_bands(12, 0.4))
        np.testing.assert_allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0.99)

    def test_penta_rejects_tiny_lines(self):
        with pytest.raises(ValueError):
            penta_bands(3, 0.1)

    @pytest.mark.parametrize("m", (3, 8, 15))
    def test_block_thomas_matches_dense(self, m: int):
        from repro.workloads.npb.bt import _bt_blocks, _dense_line_matrix

        lower, diag, upper = _bt_blocks(m, 0.4, 0.05)
        a = _dense_line_matrix(m, 0.4, 0.05)
        rng = np.random.default_rng(3)
        rhs = rng.standard_normal((4, m, 2))
        ours = block_thomas(lower, diag, upper, rhs)
        ref = np.linalg.solve(a, rhs.reshape(4, 2 * m).T).T.reshape(4, m, 2)
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_bt_line_matrix_is_spd(self):
        from repro.workloads.npb.bt import _dense_line_matrix

        a = _dense_line_matrix(10, 0.4, 0.05)
        np.testing.assert_allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) >= 1.0 - 1e-12)

    def test_laplacian_2d_is_spd(self):
        a = laplacian_2d(4)
        np.testing.assert_allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)


class TestKernelsValidate:
    @pytest.mark.parametrize("n_tasks", (1, 3, 4))
    def test_cg(self, off_runtime, n_tasks: int):
        r = run_cg(off_runtime, n_tasks=n_tasks, side=8, iterations=50)
        assert r.validated
        assert r.details["residual"] < 1e-6

    @pytest.mark.parametrize("n_tasks", (2, 4))
    def test_mg(self, off_runtime, n_tasks: int):
        r = run_mg(off_runtime, n_tasks=n_tasks, levels=4, cycles=3)
        assert r.details["contraction"] < 0.05

    @pytest.mark.parametrize("n_tasks", (2, 5))
    def test_ft(self, off_runtime, n_tasks: int):
        r = run_ft(off_runtime, n_tasks=n_tasks, size=16, steps=3)
        assert r.details["field_err"] < 1e-10

    @pytest.mark.parametrize("n_tasks", (2, 4))
    def test_bt(self, off_runtime, n_tasks: int):
        r = run_bt(off_runtime, n_tasks=n_tasks, size=12, steps=4)
        assert r.details["dissipative"]

    @pytest.mark.parametrize("n_tasks", (2, 4))
    def test_sp(self, off_runtime, n_tasks: int):
        r = run_sp(off_runtime, n_tasks=n_tasks, size=12, steps=4)
        assert r.details["smoothing"]

    def test_more_ranks_than_rows(self, off_runtime):
        """Empty slabs must be harmless (the 64-task sweep on class-T
        sizes leaves some ranks idle)."""
        r = run_ft(off_runtime, n_tasks=12, size=8, steps=2)
        assert r.validated


class TestKernelsUnderVerification:
    """Verification must not perturb results (same seeds => same sums)."""

    def test_cg_checksum_stable_across_modes(self, runtime_factory):
        sums = set()
        for mode in ("off", "detection", "avoidance"):
            rt = runtime_factory(mode)
            sums.add(run_cg(rt, n_tasks=3, side=8, iterations=40).checksum)
        assert len(sums) == 1

    def test_bt_checksum_stable_across_modes(self, runtime_factory):
        sums = set()
        for mode in ("off", "detection", "avoidance"):
            rt = runtime_factory(mode)
            sums.add(run_bt(rt, n_tasks=3, size=12, steps=3).checksum)
        assert len(sums) == 1
