"""Point-to-point phaser workload tests (the Shirako-et-al. pattern)."""

from __future__ import annotations

import pytest

from repro.workloads.course.pt2pt import run_pt2pt


class TestPt2pt:
    @pytest.mark.parametrize("n", (2, 8, 16))
    def test_matches_serial_reference(self, off_runtime, n: int):
        r = run_pt2pt(off_runtime, n_tasks=n, iterations=5)
        assert r.details["err"] == 0.0
        assert r.details["pairs"] == n - 1

    def test_rejects_single_task(self, off_runtime):
        with pytest.raises(ValueError):
            run_pt2pt(off_runtime, n_tasks=1)

    def test_under_avoidance_no_reports(self, avoidance_runtime):
        r = run_pt2pt(avoidance_runtime, n_tasks=10, iterations=4)
        assert r.validated
        assert not avoidance_runtime.reports

    def test_under_detection_no_reports(self, detection_runtime):
        r = run_pt2pt(detection_runtime, n_tasks=10, iterations=4)
        assert r.validated
        assert not detection_runtime.reports

    def test_edge_counts_favour_wfg_shape(self, runtime_factory):
        """Many two-party phasers: neither graph model explodes, and the
        WFG stays within the same magnitude as the SG (the cited
        point-to-point expectation, in contrast to PS/BFS)."""
        from repro.core.selection import GraphModel

        edges = {}
        for model in (GraphModel.WFG, GraphModel.SG):
            rt = runtime_factory("avoidance", model=model)
            run_pt2pt(rt, n_tasks=16, iterations=5)
            edges[model] = rt.stats.mean_edges
        assert edges[GraphModel.WFG] <= 4 * max(edges[GraphModel.SG], 1.0)
